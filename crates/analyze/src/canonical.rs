//! Canonical forms for [`IndexModel`]s, so models produced by different
//! pipelines can be compared for *partition equality*.
//!
//! The black-box recovery engine (`crates/attack`) observes an index
//! function only through conflicts — "do `a` and `b` share a set?" —
//! which determines the function up to a relabeling of the set numbers,
//! never the labels themselves. Raw model equality is therefore the
//! wrong differential-oracle predicate: the attack may legitimately
//! return `a mod 2048` where the static analyzer wrote the low-bits
//! GF(2) matrix, or a row-recombined matrix with the same row space.
//! [`canonicalize`] collapses those presentations:
//!
//! * **Linear** maps reduce to the unique reduced row-echelon basis of
//!   their row space ([`crate::gf2::Gf2Matrix::row_space_rref`]) — equal
//!   row space ⟺ equal partition up to relabeling.
//! * **Residue** with a power-of-two modulus `2^k` *is* the traditional
//!   low-bits map and normalizes to that Linear form (`modulus == 1`
//!   degenerates to the empty matrix: a single set, e.g. what a
//!   fully-associative cache looks like to a conflict probe).
//! * **Affine** reduces its factor mod `2^k`; factor ≡ 0 degenerates to
//!   the low-bits Linear form (`(0·T + x) mod 2^k = x`).
//! * **Opaque** keeps only the observable envelope (`in_bits`, `n_set`):
//!   a black box that fits no family has no finite certificate to
//!   compare, so opaque-vs-opaque equality is deliberately coarse.
//!
//! Two canonical forms comparing equal is an *exact* statement for the
//! three algebraic families: the partitions of `0..2^in_bits` agree
//! everywhere. The battery unit `attack/canonical-eq` fuzzes this
//! soundness direction against sampled evaluation.

use crate::gf2::input_mask;
use crate::model::IndexModel;

/// A model reduced to the invariant a conflict observer can actually
/// measure. See the module docs for the normalization rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CanonicalModel {
    /// GF(2)-linear partition: the unique RREF basis of the row space,
    /// pivots ascending. An empty basis is the constant map (one set).
    Linear {
        /// Address bits modeled.
        in_bits: u32,
        /// RREF row masks, pivot columns strictly ascending.
        rows: Vec<u64>,
    },
    /// `a mod modulus` with a non-power-of-two modulus.
    Residue {
        /// Address bits modeled.
        in_bits: u32,
        /// The modulus.
        modulus: u64,
    },
    /// `(factor·T + x) mod 2^index_bits` with `factor mod 2^index_bits`
    /// nonzero.
    Affine {
        /// Address bits modeled.
        in_bits: u32,
        /// Set-index width `k`.
        index_bits: u32,
        /// Displacement factor, already reduced mod `2^index_bits`.
        factor: u64,
    },
    /// No exact family: only the observable envelope is retained.
    Opaque {
        /// Address bits modeled.
        in_bits: u32,
        /// Upper bound on the sets addressed.
        n_set: u64,
    },
}

impl CanonicalModel {
    /// Short family tag (`linear` / `residue` / `affine` / `opaque`),
    /// used by reports and the CLI table.
    #[must_use]
    pub fn family(&self) -> &'static str {
        match self {
            CanonicalModel::Linear { .. } => "linear",
            CanonicalModel::Residue { .. } => "residue",
            CanonicalModel::Affine { .. } => "affine",
            CanonicalModel::Opaque { .. } => "opaque",
        }
    }
}

impl std::fmt::Display for CanonicalModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CanonicalModel::Linear { in_bits, rows } => {
                write!(f, "linear[{in_bits}b; ")?;
                if rows.is_empty() {
                    write!(f, "0 rows (1 set)")?;
                } else {
                    let shown: Vec<String> = rows.iter().map(|r| format!("{r:#x}")).collect();
                    write!(f, "{}", shown.join(" "))?;
                }
                write!(f, "]")
            }
            CanonicalModel::Residue { in_bits, modulus } => {
                write!(f, "residue[{in_bits}b; mod {modulus}]")
            }
            CanonicalModel::Affine {
                in_bits,
                index_bits,
                factor,
            } => write!(f, "affine[{in_bits}b; {factor}*T + x mod 2^{index_bits}]"),
            CanonicalModel::Opaque { in_bits, n_set } => {
                write!(f, "opaque[{in_bits}b; <={n_set} sets]")
            }
        }
    }
}

/// The low-bits identity partition over `k` index bits as a canonical
/// Linear form (the normal form shared by `Base`, `Residue {2^k}` and
/// `Affine {factor ≡ 0}`).
fn low_bits_linear(k: u32, in_bits: u32) -> CanonicalModel {
    CanonicalModel::Linear {
        in_bits,
        rows: (0..k).map(|i| 1u64 << i).collect(),
    }
}

/// Reduces a model to its canonical form. Equality of the results is
/// partition equality (up to set relabeling) for the exact families;
/// see the module docs for the exact normalization rules.
///
/// # Examples
///
/// ```
/// use primecache_analyze::{canonicalize, model_of, IndexModel};
/// use primecache_core::index::{Geometry, HashKind};
///
/// // `Base` and `a mod 2048` induce the same partition: equal forms.
/// let base = model_of(HashKind::Traditional, Geometry::new(2048), 26);
/// let residue = IndexModel::Residue { modulus: 2048, in_bits: 26 };
/// assert_eq!(canonicalize(&base), canonicalize(&residue));
/// ```
#[must_use]
pub fn canonicalize(model: &IndexModel) -> CanonicalModel {
    match model {
        IndexModel::Linear(m) => CanonicalModel::Linear {
            in_bits: m.in_bits(),
            rows: m.row_space_rref(),
        },
        IndexModel::Residue { modulus, in_bits } => {
            if modulus.is_power_of_two() {
                low_bits_linear(modulus.trailing_zeros(), *in_bits)
            } else {
                CanonicalModel::Residue {
                    in_bits: *in_bits,
                    modulus: *modulus,
                }
            }
        }
        IndexModel::Affine {
            factor,
            index_bits,
            in_bits,
        } => {
            let f = factor & input_mask(*index_bits);
            if f == 0 {
                low_bits_linear(*index_bits, *in_bits)
            } else {
                CanonicalModel::Affine {
                    in_bits: *in_bits,
                    index_bits: *index_bits,
                    factor: f,
                }
            }
        }
        IndexModel::Opaque { in_bits, n_set, .. } => CanonicalModel::Opaque {
            in_bits: *in_bits,
            n_set: *n_set,
        },
    }
}

/// Whether two models induce the same conflict partition, judged by
/// canonical form.
#[must_use]
pub fn models_equivalent(a: &IndexModel, b: &IndexModel) -> bool {
    canonicalize(a) == canonicalize(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf2::Gf2Matrix;
    use crate::model::model_of;
    use primecache_core::index::{Geometry, HashKind};

    #[test]
    fn row_scrambled_linear_maps_are_equal() {
        // Same row space, different presentation: out1' = out0 ^ out1.
        let a = Gf2Matrix::new(vec![0b0011, 0b1100], 8);
        let b = Gf2Matrix::new(vec![0b1111, 0b1100], 8);
        assert!(models_equivalent(
            &IndexModel::Linear(a),
            &IndexModel::Linear(b)
        ));
    }

    #[test]
    fn independent_row_changes_the_form() {
        let a = Gf2Matrix::new(vec![0b0011], 8);
        let b = Gf2Matrix::new(vec![0b0011, 0b0100], 8);
        assert!(!models_equivalent(
            &IndexModel::Linear(a),
            &IndexModel::Linear(b)
        ));
    }

    #[test]
    fn power_of_two_residue_is_base() {
        let base = model_of(HashKind::Traditional, Geometry::new(2048), 26);
        let residue = IndexModel::Residue {
            modulus: 2048,
            in_bits: 26,
        };
        assert_eq!(canonicalize(&base), canonicalize(&residue));
    }

    #[test]
    fn trivial_residue_is_the_empty_matrix() {
        let one_set = IndexModel::Residue {
            modulus: 1,
            in_bits: 26,
        };
        assert_eq!(
            canonicalize(&one_set),
            CanonicalModel::Linear {
                in_bits: 26,
                rows: Vec::new()
            }
        );
    }

    #[test]
    fn affine_factor_reduces_mod_2k() {
        let a = IndexModel::Affine {
            factor: 9,
            index_bits: 11,
            in_bits: 26,
        };
        let b = IndexModel::Affine {
            factor: 9 + 2048,
            index_bits: 11,
            in_bits: 26,
        };
        assert!(models_equivalent(&a, &b));
        // Factor ≡ 0 collapses to the low-bits map.
        let zero = IndexModel::Affine {
            factor: 4096,
            index_bits: 11,
            in_bits: 26,
        };
        let base = model_of(HashKind::Traditional, Geometry::new(2048), 26);
        assert!(models_equivalent(&zero, &base));
    }

    #[test]
    fn families_do_not_cross_unless_degenerate() {
        let pmod = model_of(HashKind::PrimeModulo, Geometry::new(2048), 26);
        let pdisp = model_of(HashKind::PrimeDisplacement, Geometry::new(2048), 26);
        let xor = model_of(HashKind::Xor, Geometry::new(2048), 26);
        assert!(!models_equivalent(&pmod, &pdisp));
        assert!(!models_equivalent(&pmod, &xor));
        assert!(!models_equivalent(&pdisp, &xor));
    }

    #[test]
    fn display_is_compact() {
        let pmod = model_of(HashKind::PrimeModulo, Geometry::new(2048), 26);
        assert_eq!(canonicalize(&pmod).to_string(), "residue[26b; mod 2039]");
        assert_eq!(canonicalize(&pmod).family(), "residue");
    }
}
