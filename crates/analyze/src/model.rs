//! Symbolic models of every index function in `primecache_core`.
//!
//! Each [`SetIndexer`](primecache_core::index::SetIndexer) falls into one
//! of three algebraic families, and each family admits exact static
//! analysis:
//!
//! * **GF(2)-linear** (`Base`, `XOR`, `XOR-fold`, `SKW` banks) — a bit
//!   matrix ([`Gf2Matrix`]); rank and kernel are computed by Gaussian
//!   elimination.
//! * **Residue** (`pMod`) — `a ↦ a mod m`; conflict structure is governed
//!   by `gcd` arithmetic, and Theorem 1 holds exactly when `m` is prime.
//! * **Affine mod 2^k** (`pDisp`, `skw+pDisp` banks) — `(p·T + x) mod 2^k`,
//!   linear over `Z_{2^k}` in the tag/index fields.
//!
//! All three families share one algebraic fact this crate's predictions
//! rest on: for a *carry-free* pair (`a & d == 0`, so `a + d = a | d` and
//! no bit of `d` disturbs a field of `a`),
//!
//! ```text
//! H(a + d) = H(a) ⊞ H(d)        (⊞ = the family's group operation)
//! ```
//!
//! so `a` and `a + d` conflict for **every** carry-free `a` exactly when
//! `H(d) = 0`. The set `{d : H(d) = 0}` — the kernel — therefore generates
//! all universal conflict strides, and [`IndexModel::conflict_generators`]
//! enumerates a basis of it.

use primecache_core::expr::Expr;
use primecache_core::index::Geometry;
use primecache_core::index::HashKind;

use crate::gf2::{input_mask, Gf2Matrix};

/// A symbolic model of one index function over `in_bits` address bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexModel {
    /// GF(2)-linear bit-matrix map.
    Linear(Gf2Matrix),
    /// `a ↦ a mod modulus` (the pMod family).
    Residue {
        /// The modulus (the paper picks the largest prime below the
        /// physical set count).
        modulus: u64,
        /// Address bits modeled.
        in_bits: u32,
    },
    /// `(factor·T + x) mod 2^index_bits` with `T = a >> index_bits`
    /// (the pDisp family).
    Affine {
        /// The displacement factor `p`.
        factor: u64,
        /// Set-index width `k`; the modulus is `2^k`.
        index_bits: u32,
        /// Address bits modeled.
        in_bits: u32,
    },
    /// A user expression that matches none of the exact algebraic
    /// families (e.g. a residue XOR-ed with tag bits). The model is the
    /// folded expression tree itself; certificates over it are *sampled*
    /// evidence, never proofs, and are marked non-exact
    /// (`Certificate::exact == false`). Soundness is preserved by
    /// claiming nothing: [`IndexModel::conflict_generators`] is empty for
    /// this family.
    Opaque {
        /// The folded expression (see `primecache_core::expr::fold`).
        expr: Expr,
        /// Address bits modeled; evaluation masks the input to this width.
        in_bits: u32,
        /// Upper bound on the sets addressed (`value_bound + 1` over the
        /// masked domain).
        n_set: u64,
    },
}

impl IndexModel {
    /// Evaluates the model at block address `a`.
    ///
    /// For every model built by [`model_of`] / [`skew_xor_model`] /
    /// [`skew_disp_model`] this agrees bit-exactly with the concrete
    /// indexer's `index()` for all `a < 2^in_bits` (the self-check and
    /// the test suite enforce this).
    #[must_use]
    pub fn eval(&self, a: u64) -> u64 {
        match self {
            IndexModel::Linear(m) => m.apply(a & input_mask(m.in_bits())),
            IndexModel::Residue { modulus, .. } => a % modulus,
            IndexModel::Affine {
                factor, index_bits, ..
            } => {
                let t = a >> index_bits;
                let x = a & input_mask(*index_bits);
                factor.wrapping_mul(t).wrapping_add(x) & input_mask(*index_bits)
            }
            IndexModel::Opaque { expr, in_bits, .. } => expr.eval(a & input_mask(*in_bits)),
        }
    }

    /// Number of sets the model maps into.
    #[must_use]
    pub fn n_set(&self) -> u64 {
        match self {
            IndexModel::Linear(m) => 1u64 << m.out_bits(),
            IndexModel::Residue { modulus, .. } => *modulus,
            IndexModel::Affine { index_bits, .. } => 1u64 << index_bits,
            IndexModel::Opaque { n_set, .. } => *n_set,
        }
    }

    /// Address bits the model covers.
    #[must_use]
    pub fn in_bits(&self) -> u32 {
        match self {
            IndexModel::Linear(m) => m.in_bits(),
            IndexModel::Residue { in_bits, .. }
            | IndexModel::Affine { in_bits, .. }
            | IndexModel::Opaque { in_bits, .. } => *in_bits,
        }
    }

    /// Whether `d` is a universal carry-free conflict stride: every pair
    /// `(a, a + d)` with `a & d == 0` maps to the same set.
    ///
    /// For the three algebraic families this is exact (`H(d) = 0` via the
    /// group law); for [`IndexModel::Opaque`] no group law holds, so the
    /// answer is *sampled evidence* — `d` collides at `a = 0` and at a
    /// spread of carry-free companions — never a proof.
    #[must_use]
    pub fn is_conflict_delta(&self, d: u64) -> bool {
        match self {
            IndexModel::Opaque { in_bits, .. } => {
                if self.eval(d) != self.eval(0) {
                    return false;
                }
                let mask = input_mask(*in_bits);
                let mut a = 0x9E37_79B9_7F4A_7C15u64;
                (0..64).all(|_| {
                    a = a.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(d);
                    let free = a & mask & !d;
                    self.eval(free | d) == self.eval(free)
                })
            }
            _ => self.eval(d) == 0,
        }
    }

    /// Generators of the universal conflict strides (the eviction-pattern
    /// generators), sorted ascending.
    ///
    /// * Linear: a kernel basis — GF(2) combinations with disjoint bits
    ///   generate every collapse pattern.
    /// * Residue: the modulus — conflicts are exactly its multiples.
    /// * Affine: the smallest tag-borne collider `2^(k+1) − p mod 2^k`
    ///   (tag +1 cancels index `2^k − p`) and `2^(2k)` (a tag delta that
    ///   the factor annihilates mod `2^k`), clipped to `in_bits`.
    #[must_use]
    pub fn conflict_generators(&self) -> Vec<u64> {
        match self {
            IndexModel::Linear(m) => m.kernel_basis(),
            IndexModel::Residue { modulus, in_bits } => {
                if *modulus <= input_mask(*in_bits) {
                    vec![*modulus]
                } else {
                    Vec::new()
                }
            }
            IndexModel::Affine {
                factor,
                index_bits,
                in_bits,
            } => {
                let k = *index_bits;
                let mask = input_mask(k);
                let g = factor & mask;
                let mut out = Vec::new();
                // Tag +1 plus the index complement of the factor.
                let d = if g == 0 {
                    1u64 << k
                } else {
                    (1u64 << k) + ((1u64 << k) - g)
                };
                if d <= input_mask(*in_bits) {
                    out.push(d);
                }
                // Tag delta 2^k: p·2^k ≡ 0 (mod 2^k) for every p.
                if 2 * k < 64 && (1u64 << (2 * k)) <= input_mask(*in_bits) {
                    out.push(1u64 << (2 * k));
                }
                out.sort_unstable();
                out
            }
            // No group law, no certified universal strides: claiming
            // nothing is the sound answer. Sampled candidates live in the
            // non-exact certificate instead.
            IndexModel::Opaque { .. } => Vec::new(),
        }
    }

    /// The effective GF(2) rank of the map, when linear; for the other
    /// families, the number of index bits (they are full-rank onto their
    /// codomain whenever well-formed).
    #[must_use]
    pub fn rank(&self) -> u32 {
        match self {
            IndexModel::Linear(m) => m.rank(),
            IndexModel::Residue { modulus, .. } => 64 - modulus.leading_zeros(),
            IndexModel::Affine { index_bits, .. } => *index_bits,
            IndexModel::Opaque { n_set, .. } => 64 - n_set.saturating_sub(1).leading_zeros(),
        }
    }
}

/// Builds the symbolic model of a [`HashKind`] over `in_bits` address
/// bits.
///
/// # Panics
///
/// Panics if `in_bits` is smaller than the geometry's index width or
/// exceeds 64.
///
/// # Examples
///
/// ```
/// use primecache_analyze::model_of;
/// use primecache_core::index::{Geometry, HashKind};
///
/// let m = model_of(HashKind::Xor, Geometry::new(2048), 26);
/// // The XOR null space contains the classic 2^11 + 1 stride.
/// assert!(m.is_conflict_delta(2049));
/// ```
#[must_use]
pub fn model_of(kind: HashKind, geom: Geometry, in_bits: u32) -> IndexModel {
    let k = geom.index_bits();
    assert!(
        in_bits >= k && in_bits <= 64,
        "in_bits {in_bits} must cover the {k} index bits"
    );
    match kind {
        HashKind::Traditional => {
            IndexModel::Linear(Gf2Matrix::new((0..k).map(|i| 1u64 << i).collect(), in_bits))
        }
        HashKind::Xor => {
            let rows = (0..k)
                .map(|i| {
                    let mut r = 1u64 << i;
                    if k + i < in_bits {
                        r |= 1 << (k + i);
                    }
                    r
                })
                .collect();
            IndexModel::Linear(Gf2Matrix::new(rows, in_bits))
        }
        HashKind::PrimeModulo => IndexModel::Residue {
            modulus: primecache_primes::prev_prime(geom.n_set_phys())
                .expect("geometry guarantees n_set_phys >= 2"),
            in_bits,
        },
        HashKind::PrimeDisplacement => IndexModel::Affine {
            factor: 9,
            index_bits: k,
            in_bits,
        },
        HashKind::Expr(id) => crate::lower::lower_expr(id.folded(), in_bits),
    }
}

/// Symbolic model of the fully-folded XOR indexer
/// ([`XorFolded`](primecache_core::index::XorFolded)): output bit `i` is
/// the parity of every address bit congruent to `i` mod `k`.
#[must_use]
pub fn xor_folded_model(geom: Geometry, in_bits: u32) -> IndexModel {
    let k = geom.index_bits();
    assert!(
        in_bits >= k && in_bits <= 64,
        "in_bits {in_bits} must cover the {k} index bits"
    );
    let rows = (0..k)
        .map(|i| {
            (i..in_bits)
                .step_by(k as usize)
                .fold(0u64, |r, b| r | (1 << b))
        })
        .collect();
    IndexModel::Linear(Gf2Matrix::new(rows, in_bits))
}

/// Symbolic model of one Seznec skew bank
/// ([`SkewXorBank`](primecache_core::index::SkewXorBank)): output bit `i`
/// is `x_i ⊕ t1_{(i − r) mod k}` with `r = bank mod k`.
#[must_use]
pub fn skew_xor_model(geom: Geometry, bank: u32, in_bits: u32) -> IndexModel {
    let k = geom.index_bits();
    assert!(
        in_bits >= k && in_bits <= 64,
        "in_bits {in_bits} must cover the {k} index bits"
    );
    let r = bank % k;
    let rows = (0..k)
        .map(|i| {
            let mut row = 1u64 << i;
            let t1_bit = k + (i + k - r) % k;
            if t1_bit < in_bits {
                row |= 1 << t1_bit;
            }
            row
        })
        .collect();
    IndexModel::Linear(Gf2Matrix::new(rows, in_bits))
}

/// Symbolic model of one prime-displacement skew bank
/// ([`SkewDispBank`](primecache_core::index::SkewDispBank)).
#[must_use]
pub fn skew_disp_model(geom: Geometry, factor: u64, in_bits: u32) -> IndexModel {
    let k = geom.index_bits();
    assert!(
        in_bits >= k && in_bits <= 64,
        "in_bits {in_bits} must cover the {k} index bits"
    );
    IndexModel::Affine {
        factor,
        index_bits: k,
        in_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primecache_core::index::{
        PrimeDisplacement, PrimeModulo, SetIndexer, SkewXorBank, Traditional, Xor, XorFolded,
    };

    const IN_BITS: u32 = 26;

    fn sample_addrs() -> Vec<u64> {
        let mut v: Vec<u64> = (0..4096u64).collect();
        v.extend((0..2000u64).map(|i| (i * 0x9E37_79B9) & input_mask(IN_BITS)));
        v
    }

    #[test]
    fn models_agree_with_concrete_indexers() {
        let geom = Geometry::new(2048);
        let cases: Vec<(IndexModel, Box<dyn SetIndexer>)> = vec![
            (
                model_of(HashKind::Traditional, geom, IN_BITS),
                Box::new(Traditional::new(geom)),
            ),
            (
                model_of(HashKind::Xor, geom, IN_BITS),
                Box::new(Xor::new(geom)),
            ),
            (
                model_of(HashKind::PrimeModulo, geom, IN_BITS),
                Box::new(PrimeModulo::new(geom)),
            ),
            (
                model_of(HashKind::PrimeDisplacement, geom, IN_BITS),
                Box::new(PrimeDisplacement::paper_default(geom)),
            ),
            (
                xor_folded_model(geom, IN_BITS),
                Box::new(XorFolded::new(geom)),
            ),
        ];
        for (model, idx) in &cases {
            for &a in &sample_addrs() {
                assert_eq!(model.eval(a), idx.index(a), "{}: a = {a:#x}", idx.name());
            }
        }
    }

    #[test]
    fn skew_models_agree_with_banks() {
        let geom = Geometry::new(512);
        for bank in 0..4 {
            let model = skew_xor_model(geom, bank, IN_BITS);
            let idx = SkewXorBank::new(geom, bank);
            for &a in &sample_addrs() {
                assert_eq!(model.eval(a), idx.index(a), "bank {bank}, a = {a:#x}");
            }
        }
    }

    #[test]
    fn xor_kernel_contains_the_classic_stride() {
        let m = model_of(HashKind::Xor, Geometry::new(2048), IN_BITS);
        let gens = m.conflict_generators();
        assert!(gens.contains(&2049), "2^11 + 1 must generate conflicts");
        // Everything above the bits XOR reads is also in the null space.
        assert!(gens.contains(&(1 << 22)));
    }

    #[test]
    fn conflict_deltas_collide_carry_free() {
        let geom = Geometry::new(256);
        for kind in HashKind::ALL {
            let model = model_of(kind, geom, 24);
            let idx = kind.build(geom);
            for d in model.conflict_generators() {
                // Carry-free companions of d.
                for a in (0..(1u64 << 24)).step_by(977) {
                    let a = a & !d;
                    assert_eq!(
                        idx.index(a + d),
                        idx.index(a),
                        "{kind}: a = {a:#x}, d = {d:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn affine_generators_match_theory() {
        let m = skew_disp_model(Geometry::new(2048), 9, IN_BITS);
        let gens = m.conflict_generators();
        // 2^12 − 9 = tag +1 with index 2^11 − 9.
        assert_eq!(gens[0], (1 << 12) - 9);
        assert!(gens.contains(&(1 << 22)));
        for &d in &gens {
            assert_eq!(m.eval(d), 0, "d = {d:#x}");
        }
    }

    #[test]
    fn residue_generator_is_the_modulus() {
        let m = model_of(HashKind::PrimeModulo, Geometry::new(2048), IN_BITS);
        assert_eq!(m.conflict_generators(), vec![2039]);
        assert_eq!(m.n_set(), 2039);
    }

    #[test]
    fn folded_model_smallest_kernel_stride() {
        let m = xor_folded_model(Geometry::new(2048), 33);
        let gens = m.conflict_generators();
        // Bits {0, 11} survive the fold together: 2^11 + 1.
        assert_eq!(gens[0], 2049);
    }
}
