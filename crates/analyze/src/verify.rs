//! Self-check: cross-validate every static prediction against the
//! concrete indexers and brute-force conflict counting.
//!
//! The analyzer is only trustworthy if its symbolic models *are* the
//! shipped index functions. This module checks, exhaustively on small
//! geometries and by sampling on the paper's:
//!
//! 1. **Model agreement** — `model.eval(a) == indexer.index(a)`.
//! 2. **Kernel equivalence** — brute-force enumeration of every delta on
//!    a small geometry agrees with `is_conflict_delta` exactly: `d` makes
//!    all carry-free pairs collide iff the model says so.
//! 3. **Balance certificates** — full-period histograms match the
//!    certified balance bound.
//! 4. **Theorem 1** — every stride below a prime modulus really is
//!    conflict-free, and every `Fails` witness really collapses.

use primecache_core::expr::builtins;
use primecache_core::index::{
    Geometry, HashKind, PrimeModulo, SetIndexer, SkewDispBank, SkewXorBank, XorFolded,
    SKEW_DISP_FACTORS,
};

use crate::certificate::{certify_all, Theorem1};
use crate::gf2::input_mask;
use crate::lower::lower_expr;
use crate::model::{model_of, skew_disp_model, skew_xor_model, xor_folded_model, IndexModel};

/// Outcome of one self-check stage.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// Stage name.
    pub name: &'static str,
    /// Number of individual comparisons performed.
    pub cases: u64,
    /// First failure description, if any.
    pub failure: Option<String>,
}

impl CheckResult {
    /// Whether the stage passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// Aggregated self-check outcome.
#[derive(Debug, Clone)]
pub struct SelfCheck {
    /// Per-stage results.
    pub stages: Vec<CheckResult>,
}

impl SelfCheck {
    /// Whether every stage passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.stages.iter().all(CheckResult::passed)
    }
}

/// Every (model, concrete indexer) pair for one geometry.
fn pairs(geom: Geometry, in_bits: u32) -> Vec<(String, IndexModel, Box<dyn SetIndexer>)> {
    let mut out: Vec<(String, IndexModel, Box<dyn SetIndexer>)> = HashKind::ALL
        .into_iter()
        .map(|kind| {
            (
                kind.label().to_owned(),
                model_of(kind, geom, in_bits),
                kind.build(geom),
            )
        })
        .collect();
    out.push((
        "XOR-fold".to_owned(),
        xor_folded_model(geom, in_bits),
        Box::new(XorFolded::new(geom)),
    ));
    for bank in 0..4 {
        out.push((
            format!("SKW[{bank}]"),
            skew_xor_model(geom, bank, in_bits),
            Box::new(SkewXorBank::new(geom, bank)),
        ));
    }
    for factor in SKEW_DISP_FACTORS {
        out.push((
            format!("skw+pDisp[{factor}]"),
            skew_disp_model(geom, factor, in_bits),
            Box::new(SkewDispBank::new(geom, factor)),
        ));
    }
    out
}

fn check_model_agreement(geom: Geometry, in_bits: u32) -> CheckResult {
    let mut cases = 0u64;
    let mut failure = None;
    'outer: for (name, model, idx) in pairs(geom, in_bits) {
        let mask = input_mask(in_bits);
        let mut a = 0u64;
        for step in 0..50_000u64 {
            a = (a.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(step)) & mask;
            cases += 1;
            if model.eval(a) != idx.index(a) {
                failure = Some(format!(
                    "{name}: model {} != indexer {} at a = {a:#x}",
                    model.eval(a),
                    idx.index(a)
                ));
                break 'outer;
            }
        }
    }
    CheckResult {
        name: "model-agreement",
        cases,
        failure,
    }
}

fn check_kernel_equivalence(geom: Geometry, in_bits: u32) -> CheckResult {
    let mut cases = 0u64;
    let mut failure = None;
    let top = 1u64 << in_bits;
    'outer: for (name, model, idx) in pairs(geom, in_bits) {
        for d in 1..top {
            cases += 1;
            // Brute-force: d collides universally iff it collides at a = 0
            // and at every sampled carry-free companion (the group law
            // makes a = 0 decisive; the samples guard the law itself).
            let mut brute = idx.index(d) == idx.index(0);
            let mut a = 0x5DEE_CE66u64;
            for _ in 0..8 {
                a = a.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(d);
                let a_free = a & input_mask(in_bits) & !d;
                brute &= idx.index(a_free + d) == idx.index(a_free);
                if !brute {
                    break;
                }
            }
            if brute != model.is_conflict_delta(d) {
                failure = Some(format!(
                    "{name}: delta {d:#x} brute-force collider = {brute}, \
                     model predicts {}",
                    model.is_conflict_delta(d)
                ));
                break 'outer;
            }
        }
    }
    CheckResult {
        name: "kernel-equivalence",
        cases,
        failure,
    }
}

fn check_balance_certificates(geom: Geometry, bank_geom: Geometry, in_bits: u32) -> CheckResult {
    let mut cases = 0u64;
    let mut failure = None;
    for cert in certify_all(geom, bank_geom, in_bits) {
        let n_set = usize::try_from(cert.n_set).expect("set count fits usize");
        let mut hist = vec![0u64; n_set];
        for a in 0..(1u64 << in_bits) {
            hist[usize::try_from(cert.model.eval(a)).expect("set index fits usize")] += 1;
        }
        cases += 1u64 << in_bits;
        let max = hist.iter().copied().max().unwrap_or(0);
        let ideal = (1u64 << in_bits) as f64 / cert.n_set as f64;
        let measured_bound = max as f64 / ideal;
        // The residue family overshoots ideal by at most one partial
        // period; linear/affine families must match the bound exactly.
        let slack = if matches!(cert.model, IndexModel::Residue { .. }) {
            1.0 + cert.n_set as f64 / (1u64 << in_bits) as f64
        } else {
            cert.balance_bound
        };
        if measured_bound > slack + 1e-9 {
            failure = Some(format!(
                "{}: measured per-set load multiple {measured_bound:.3} \
                 exceeds certified bound {slack:.3}",
                cert.name
            ));
            break;
        }
    }
    CheckResult {
        name: "balance-certificates",
        cases,
        failure,
    }
}

fn check_theorem1(geom: Geometry, bank_geom: Geometry, in_bits: u32) -> CheckResult {
    let mut cases = 0u64;
    let mut failure = None;
    for cert in certify_all(geom, bank_geom, in_bits) {
        match cert.theorem1 {
            Theorem1::Holds { modulus } => {
                // Every stride below the modulus: one full period maps to
                // all-distinct sets.
                let idx = PrimeModulo::with_modulus(geom, modulus);
                for s in 1..modulus.min(512) {
                    cases += 1;
                    let mut seen = vec![false; usize::try_from(modulus).expect("fits")];
                    let distinct = (0..modulus)
                        .filter(|i| {
                            let set = usize::try_from(idx.index(i * s)).expect("set fits usize");
                            !std::mem::replace(&mut seen[set], true)
                        })
                        .count() as u64;
                    if distinct != modulus {
                        failure = Some(format!(
                            "{}: stride {s} touched {distinct} of {modulus} sets",
                            cert.name
                        ));
                    }
                }
            }
            Theorem1::Fails { witness_stride } => {
                // The witness must produce real conflicts: n_set accesses
                // landing on strictly fewer sets.
                cases += 1;
                let steps = cert.n_set.min(1u64 << in_bits.saturating_sub(16).max(8));
                let distinct = (0..steps)
                    .map(|i| cert.model.eval(i.wrapping_mul(witness_stride)))
                    .collect::<std::collections::HashSet<u64>>()
                    .len() as u64;
                if distinct >= steps {
                    failure = Some(format!(
                        "{}: witness stride {witness_stride} produced no \
                         conflicts over {steps} accesses",
                        cert.name
                    ));
                }
            }
            Theorem1::NoGuarantee => {}
        }
        if failure.is_some() {
            break;
        }
    }
    CheckResult {
        name: "theorem1-certificates",
        cases,
        failure,
    }
}

fn check_expr_differential(geom: Geometry, in_bits: u32) -> CheckResult {
    use primecache_core::expr::register_anonymous;

    let mut sources = vec![
        builtins::traditional_src(geom),
        builtins::xor_src(geom),
        builtins::xor_folded_src(geom),
        builtins::pmod_src(geom),
        builtins::pdisp_src(geom, 9),
        // A mixed expression that matches no exact family: exercises the
        // sound Opaque fallback of the lowering.
        "((a % 61) ^ (a >> 7)) & 63".to_owned(),
    ];
    for bank in 0..4 {
        sources.push(builtins::skew_xor_bank_src(geom, bank));
    }
    let mut cases = 0u64;
    let mut failure = None;
    'outer: for src in sources {
        let id = match register_anonymous(&src) {
            Ok(id) => id,
            Err(e) => {
                failure = Some(format!("`{src}` failed to compile: {e}"));
                break;
            }
        };
        let model = lower_expr(id.folded(), in_bits);
        let closure = id.indexer();
        for a in 0..(1u64 << in_bits) {
            cases += 1;
            let fast = closure.index(a);
            let slow = model.eval(a);
            if fast != slow {
                failure = Some(format!(
                    "`{src}`: closure {fast} != abstract model {slow} at a = {a:#x}"
                ));
                break 'outer;
            }
        }
    }
    CheckResult {
        name: "expr-differential",
        cases,
        failure,
    }
}

/// Runs the full self-check battery: exhaustive on a 64-set geometry,
/// sampled on the paper's 2048-set L2.
#[must_use]
pub fn self_check() -> SelfCheck {
    let small = Geometry::new(64);
    let small_banks = Geometry::new(16);
    let paper = Geometry::new(2048);
    let paper_banks = Geometry::new(512);
    SelfCheck {
        stages: vec![
            check_model_agreement(paper, 26),
            check_model_agreement(small, 14),
            check_kernel_equivalence(small, 14),
            check_balance_certificates(small, small_banks, 14),
            check_theorem1(small, small_banks, 14),
            check_theorem1(paper, paper_banks, 26),
            check_expr_differential(small, 14),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_full_battery_passes() {
        let report = self_check();
        for stage in &report.stages {
            assert!(
                stage.passed(),
                "{}: {}",
                stage.name,
                stage.failure.as_deref().unwrap_or("")
            );
            assert!(stage.cases > 0, "{} ran no cases", stage.name);
        }
        assert!(report.passed());
    }

    #[test]
    fn kernel_equivalence_is_exhaustive_on_tiny_geometries() {
        let r = check_kernel_equivalence(Geometry::new(16), 10);
        assert!(r.passed(), "{:?}", r.failure);
        // 13 indexers x (2^10 - 1) deltas.
        assert_eq!(r.cases, 13 * 1023);
    }
}
