//! Linear algebra over GF(2) for bit-matrix index functions.
//!
//! Every XOR-style hash is a linear map from address bits to set-index
//! bits over the two-element field: output bit `i` is the parity of some
//! subset of input bits. Representing that subset as a `u64` mask makes a
//! whole matrix a `Vec<u64>`, and Gaussian elimination — rank, kernel —
//! runs in a few hundred word operations.
//!
//! The *kernel* (null space) is the interesting object: a nonzero vector
//! `d` with `M·d = 0` means the addresses `a` and `a + d` map to the same
//! set whenever the addition is carry-free (`a & d == 0`), because then
//! `a + d = a ⊕ d` and `M(a ⊕ d) = M(a) ⊕ M(d) = M(a)`. Kernel vectors
//! are exactly the conflict-stride generators that eviction-set
//! construction exploits (cf. the Sandy Bridge hash reverse-engineering
//! literature).

/// A GF(2) matrix mapping `in_bits` input bits to `rows.len()` output
/// bits. Row `i` is a mask of the input bits whose parity forms output
/// bit `i`.
///
/// # Examples
///
/// ```
/// use primecache_analyze::Gf2Matrix;
///
/// // The XOR hash for 4 sets over 4 address bits: out_i = x_i ^ t1_i.
/// let m = Gf2Matrix::new(vec![0b0101, 0b1010], 4);
/// assert_eq!(m.rank(), 2);
/// assert_eq!(m.apply(0b0101), 0b01 ^ 0b01); // x=01, t1=01 -> 0
/// assert_eq!(m.kernel_basis(), vec![0b0101, 0b1010]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gf2Matrix {
    rows: Vec<u64>,
    in_bits: u32,
}

impl Gf2Matrix {
    /// Builds a matrix from row masks over `in_bits` input bits.
    ///
    /// # Panics
    ///
    /// Panics if `in_bits` is 0 or exceeds 64, or if a row references an
    /// input bit at or above `in_bits`.
    #[must_use]
    pub fn new(rows: Vec<u64>, in_bits: u32) -> Self {
        assert!((1..=64).contains(&in_bits), "in_bits must be in 1..=64");
        let mask = input_mask(in_bits);
        for (i, &r) in rows.iter().enumerate() {
            assert!(
                r & !mask == 0,
                "row {i} references input bits above {in_bits}"
            );
        }
        Self { rows, in_bits }
    }

    /// Number of input (address) bits.
    #[must_use]
    pub fn in_bits(&self) -> u32 {
        self.in_bits
    }

    /// Number of output (set-index) bits.
    #[must_use]
    pub fn out_bits(&self) -> u32 {
        u32::try_from(self.rows.len()).expect("row count fits in u32")
    }

    /// The mask of input bits feeding output bit `i`.
    #[must_use]
    pub fn row(&self, i: u32) -> u64 {
        self.rows[i as usize]
    }

    /// Applies the map: output bit `i` is `parity(x & row_i)`.
    #[must_use]
    pub fn apply(&self, x: u64) -> u64 {
        let mut out = 0u64;
        for (i, &r) in self.rows.iter().enumerate() {
            out |= u64::from((x & r).count_ones() & 1) << i;
        }
        out
    }

    /// Rank of the matrix (dimension of the image).
    #[must_use]
    pub fn rank(&self) -> u32 {
        let (_, pivots) = self.rref();
        u32::try_from(pivots.len()).expect("pivot count fits in u32")
    }

    /// Dimension of the kernel: `in_bits - rank`.
    #[must_use]
    pub fn kernel_dim(&self) -> u32 {
        self.in_bits - self.rank()
    }

    /// A basis of the kernel (null space), sorted ascending by value.
    ///
    /// Every returned `d` satisfies `apply(d) == 0`; together they span
    /// all such vectors. Sorted ascending, the first element is the
    /// smallest conflict-stride generator.
    #[must_use]
    pub fn kernel_basis(&self) -> Vec<u64> {
        let (rref, pivots) = self.rref();
        let mut basis = Vec::new();
        for f in 0..self.in_bits {
            if pivots.contains(&f) {
                continue;
            }
            let mut v = 1u64 << f;
            for (row, &p) in rref.iter().zip(&pivots) {
                if (row >> f) & 1 == 1 {
                    v |= 1 << p;
                }
            }
            basis.push(v);
        }
        basis.sort_unstable();
        basis
    }

    /// Whether the restriction of the map to input bits `0..out_bits` is
    /// invertible — the *permutation certificate*: any `2^out_bits`
    /// consecutive aligned addresses (fixed tag, all index fields) map
    /// onto all sets exactly once.
    #[must_use]
    pub fn index_window_permutation(&self) -> bool {
        let k = self.out_bits();
        if k > self.in_bits {
            return false;
        }
        let window = input_mask(k);
        let restricted: Vec<u64> = self.rows.iter().map(|&r| r & window).collect();
        Gf2Matrix::new(restricted, k.max(1)).rank() == k
    }

    /// The unique reduced row-echelon basis of the row space, pivots
    /// ascending. Two matrices have the same row space — i.e. induce the
    /// same partition of addresses into sets, up to a relabeling of the
    /// set numbers — exactly when this basis is equal, which is what makes
    /// it the canonical form a black-box observer can be checked against:
    /// conflict observations determine a linear map only up to an
    /// invertible recombination of its output bits.
    #[must_use]
    pub fn row_space_rref(&self) -> Vec<u64> {
        self.rref().0
    }

    /// Reduced row-echelon form of the nonzero rows, with the pivot
    /// column of each returned row.
    fn rref(&self) -> (Vec<u64>, Vec<u32>) {
        let mut mat: Vec<u64> = self.rows.iter().copied().filter(|&r| r != 0).collect();
        let mut pivots = Vec::new();
        let mut r = 0usize;
        for c in 0..self.in_bits {
            let Some(p) = (r..mat.len()).find(|&i| (mat[i] >> c) & 1 == 1) else {
                continue;
            };
            mat.swap(r, p);
            for i in 0..mat.len() {
                if i != r && (mat[i] >> c) & 1 == 1 {
                    mat[i] ^= mat[r];
                }
            }
            pivots.push(c);
            r += 1;
        }
        mat.truncate(r);
        (mat, pivots)
    }
}

/// Mask of the low `bits` bits (all 64 when `bits == 64`).
#[must_use]
pub fn input_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity(k: u32, in_bits: u32) -> Gf2Matrix {
        Gf2Matrix::new((0..k).map(|i| 1u64 << i).collect(), in_bits)
    }

    #[test]
    fn identity_has_full_rank_and_padded_kernel() {
        let m = identity(4, 10);
        assert_eq!(m.rank(), 4);
        assert_eq!(m.kernel_dim(), 6);
        // Kernel = the six untouched high bits.
        assert_eq!(
            m.kernel_basis(),
            (4..10).map(|i| 1u64 << i).collect::<Vec<_>>()
        );
        assert!(m.index_window_permutation());
    }

    #[test]
    fn kernel_vectors_annihilate() {
        // XOR map over 8 bits, 4 sets: out_i = x_i ^ t1_i.
        let m = Gf2Matrix::new((0..4).map(|i| (1u64 << i) | (1 << (i + 4))).collect(), 8);
        assert_eq!(m.rank(), 4);
        let basis = m.kernel_basis();
        assert_eq!(basis.len(), 4);
        for &d in &basis {
            assert_eq!(m.apply(d), 0, "kernel vector {d:#b} must map to 0");
        }
        // Smallest generator: bit 0 in both fields = 0b00010001 = 17.
        assert_eq!(basis[0], 17);
    }

    #[test]
    fn kernel_spans_exactly_the_null_space() {
        // Brute-force over every 8-bit input: apply(d) == 0 iff d is a
        // GF(2) combination of the basis.
        let m = Gf2Matrix::new(vec![0b1100_1001, 0b0110_0011, 0b1010_0101], 8);
        let basis = m.kernel_basis();
        let mut span = std::collections::HashSet::from([0u64]);
        for &b in &basis {
            let existing: Vec<u64> = span.iter().copied().collect();
            for v in existing {
                span.insert(v ^ b);
            }
        }
        for d in 0..256u64 {
            assert_eq!(m.apply(d) == 0, span.contains(&d), "d = {d:#010b}");
        }
        assert_eq!(span.len(), 1 << m.kernel_dim());
    }

    #[test]
    fn rank_deficient_map_is_not_a_window_permutation() {
        // Both output bits read the same input bit: rank 1.
        let m = Gf2Matrix::new(vec![0b01, 0b01], 6);
        assert_eq!(m.rank(), 1);
        assert!(!m.index_window_permutation());
    }

    #[test]
    fn zero_matrix_kernel_is_everything() {
        let m = Gf2Matrix::new(vec![0, 0], 5);
        assert_eq!(m.rank(), 0);
        assert_eq!(m.kernel_dim(), 5);
        assert_eq!(m.kernel_basis().len(), 5);
    }

    #[test]
    #[should_panic(expected = "references input bits")]
    fn out_of_range_row_rejected() {
        let _ = Gf2Matrix::new(vec![0b1_0000], 4);
    }
}
