//! Abstract lowering: DSL expression → symbolic [`IndexModel`].
//!
//! This is the second of the DSL's two compilations (the first is the
//! hot-path stack program in `primecache_core::expr`). The lowering is a
//! classifier over the *folded* tree:
//!
//! 1. **Residue** — the exact shape `a % m`.
//! 2. **Affine** — the pDisp shape `((f * (a >> k)) + x) & (2^k - 1)`
//!    with `x ∈ {a, a & (2^k - 1)}` (either `+` operand order).
//! 3. **Linear** — an abstract interpretation over GF(2): each node is
//!    summarized per output bit as `parity(a & row_i) ⊕ const_i`, and a
//!    node whose operator cannot preserve that form (a carrying add, a
//!    data-dependent AND, a true multiply) aborts the family.
//! 4. **Opaque** — everything else. Sound by construction: the opaque
//!    model certifies nothing; its [`Certificate`](crate::Certificate)
//!    fields are sampled estimates flagged `exact: false`.
//!
//! The differential oracle in `primecache-check` pins this lowering
//! against the compiled closure on every family, and the test suite pins
//! the lowered model of every built-in scheme's DSL re-expression equal to
//! the hard-coded model.

use primecache_core::expr::{fold, value_bound, BinOp, Expr};

use crate::gf2::{input_mask, Gf2Matrix};
use crate::model::IndexModel;

/// Lowers an expression over `in_bits` address bits into the most precise
/// model family that provably matches it.
///
/// The expression is folded first, so both compilations consume the same
/// canonical tree. Agreement contract: for every `a < 2^in_bits`,
/// `lower_expr(e, in_bits).eval(a) == e.eval(a)`.
#[must_use]
pub fn lower_expr(e: &Expr, in_bits: u32) -> IndexModel {
    let e = fold(e);
    if let Expr::Bin(BinOp::Mod, l, r) = &e {
        if let (Expr::Addr, Expr::Const(m)) = (&**l, &**r) {
            if *m > 0 {
                return IndexModel::Residue {
                    modulus: *m,
                    in_bits,
                };
            }
        }
    }
    if let Some(model) = match_affine(&e, in_bits) {
        return model;
    }
    if let Some(model) = lower_linear(&e, in_bits) {
        return model;
    }
    let n_set = value_bound(&e, input_mask(in_bits)).saturating_add(1);
    IndexModel::Opaque {
        expr: e,
        in_bits,
        n_set,
    }
}

/// Matches the pDisp shape `((f * (a >> k)) + x) & mask` with
/// `mask = 2^k - 1` and `x ∈ {a, a & mask}`, in either `+` operand order.
fn match_affine(e: &Expr, in_bits: u32) -> Option<IndexModel> {
    let Expr::Bin(BinOp::And, sum, mc) = e else {
        return None;
    };
    let Expr::Const(mask) = **mc else {
        return None;
    };
    let k = mask.count_ones();
    if mask == 0 || mask != input_mask(k) {
        return None;
    }
    let Expr::Bin(BinOp::Add, l, r) = &**sum else {
        return None;
    };
    let tag_factor = |t: &Expr| -> Option<u64> {
        // fold() canonicalizes the constant factor to the right.
        let Expr::Bin(BinOp::Mul, shr, f) = t else {
            return None;
        };
        let Expr::Const(factor) = **f else {
            return None;
        };
        let Expr::Bin(BinOp::Shr, a, s) = &**shr else {
            return None;
        };
        (matches!(**a, Expr::Addr) && matches!(**s, Expr::Const(shift) if shift == u64::from(k)))
            .then_some(factor)
    };
    let is_x_part = |x: &Expr| -> bool {
        match x {
            Expr::Addr => true,
            Expr::Bin(BinOp::And, a, m) => {
                matches!(**a, Expr::Addr) && matches!(**m, Expr::Const(c) if c == mask)
            }
            _ => false,
        }
    };
    let factor = match (tag_factor(l), tag_factor(r)) {
        (Some(f), _) if is_x_part(r) => f,
        (_, Some(f)) if is_x_part(l) => f,
        _ => return None,
    };
    Some(IndexModel::Affine {
        factor,
        index_bits: k,
        in_bits,
    })
}

/// Per-bit GF(2)-affine summary of a node: output bit `i` is
/// `parity(a & rows[i]) ⊕ ((consts >> i) & 1)`.
#[derive(Clone)]
struct BitLin {
    rows: [u64; 64],
    consts: u64,
}

/// Mask of output bits that can possibly be nonzero.
fn possibly_one(s: &BitLin) -> u64 {
    let mut m = s.consts;
    for (i, &r) in s.rows.iter().enumerate() {
        if r != 0 {
            m |= 1 << i;
        }
    }
    m
}

/// Abstract GF(2) interpretation; `None` when any node escapes the
/// bit-affine form.
fn lin(e: &Expr, in_bits: u32) -> Option<BitLin> {
    let zero = || BitLin {
        rows: [0u64; 64],
        consts: 0,
    };
    match e {
        Expr::Addr => {
            let mut s = zero();
            for i in 0..in_bits.min(64) {
                s.rows[i as usize] = 1u64 << i;
            }
            Some(s)
        }
        Expr::Const(c) => {
            let mut s = zero();
            s.consts = *c;
            Some(s)
        }
        Expr::Bin(op, le, re) => match op {
            BinOp::Xor => {
                let l = lin(le, in_bits)?;
                let r = lin(re, in_bits)?;
                let mut s = zero();
                for i in 0..64 {
                    s.rows[i] = l.rows[i] ^ r.rows[i];
                }
                s.consts = l.consts ^ r.consts;
                Some(s)
            }
            BinOp::And => {
                let l = lin(le, in_bits)?;
                let r = lin(re, in_bits)?;
                let mut s = zero();
                for i in 0..64 {
                    let (lr, lc) = (l.rows[i], (l.consts >> i) & 1);
                    let (rr, rc) = (r.rows[i], (r.consts >> i) & 1);
                    // x & y is linear only when one side's bit is a known
                    // constant (or both sides are the identical function).
                    let (row, c) = if lr == 0 {
                        if lc == 0 {
                            (0, 0)
                        } else {
                            (rr, rc)
                        }
                    } else if rr == 0 {
                        if rc == 0 {
                            (0, 0)
                        } else {
                            (lr, lc)
                        }
                    } else if lr == rr && lc == rc {
                        (lr, lc)
                    } else {
                        return None;
                    };
                    s.rows[i] = row;
                    s.consts |= c << i;
                }
                Some(s)
            }
            BinOp::Or => {
                let l = lin(le, in_bits)?;
                let r = lin(re, in_bits)?;
                let mut s = zero();
                for i in 0..64 {
                    let (lr, lc) = (l.rows[i], (l.consts >> i) & 1);
                    let (rr, rc) = (r.rows[i], (r.consts >> i) & 1);
                    // x | y is linear when either side is constant (1
                    // absorbs, 0 passes through) or both are identical.
                    let (row, c) = if (lr == 0 && lc == 1) || (rr == 0 && rc == 1) {
                        (0, 1)
                    } else if lr == 0 {
                        (rr, rc)
                    } else if rr == 0 || (lr == rr && lc == rc) {
                        (lr, lc)
                    } else {
                        return None;
                    };
                    s.rows[i] = row;
                    s.consts |= c << i;
                }
                Some(s)
            }
            BinOp::Add => {
                let l = lin(le, in_bits)?;
                let r = lin(re, in_bits)?;
                // Carry-free addition only: when no bit position can be
                // nonzero on both sides, + is | is ^.
                if possibly_one(&l) & possibly_one(&r) != 0 {
                    return None;
                }
                let mut s = zero();
                for i in 0..64 {
                    s.rows[i] = l.rows[i] | r.rows[i];
                }
                s.consts = l.consts | r.consts;
                Some(s)
            }
            BinOp::Shl => {
                let Expr::Const(sh) = **re else {
                    return None;
                };
                let l = lin(le, in_bits)?;
                let mut s = zero();
                if sh < 64 {
                    let sh = usize::try_from(sh).expect("sh < 64");
                    for i in sh..64 {
                        s.rows[i] = l.rows[i - sh];
                    }
                    s.consts = l.consts << sh;
                }
                Some(s)
            }
            BinOp::Shr => {
                let Expr::Const(sh) = **re else {
                    return None;
                };
                let l = lin(le, in_bits)?;
                let mut s = zero();
                if sh < 64 {
                    let sh = usize::try_from(sh).expect("sh < 64");
                    for i in 0..64 - sh {
                        s.rows[i] = l.rows[i + sh];
                    }
                    s.consts = l.consts >> sh;
                }
                Some(s)
            }
            BinOp::Mod => {
                // x % m == x whenever x provably stays below m.
                let Expr::Const(m) = **re else {
                    return None;
                };
                (m > 0 && value_bound(le, input_mask(in_bits)) < m)
                    .then(|| lin(le, in_bits))
                    .flatten()
            }
            // fold() reduces power-of-two factors to shifts; any
            // remaining multiply carries across bits.
            BinOp::Mul => None,
        },
    }
}

/// Lowers into the linear family when the whole tree is bit-affine with a
/// zero constant part.
fn lower_linear(e: &Expr, in_bits: u32) -> Option<IndexModel> {
    let s = lin(e, in_bits)?;
    if s.consts != 0 {
        return None;
    }
    let out_bits = s.rows.iter().rposition(|&r| r != 0).map_or(0, |i| i + 1);
    let rows: Vec<u64> = s.rows[..out_bits].to_vec();
    Some(IndexModel::Linear(Gf2Matrix::new(rows, in_bits)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use primecache_core::expr::{builtins, fold, parse};
    use primecache_core::index::{Geometry, HashKind};

    use crate::model::{model_of, skew_xor_model, xor_folded_model};

    const IN_BITS: u32 = 26;

    fn lowered(src: &str) -> IndexModel {
        lower_expr(&parse(src).unwrap(), IN_BITS)
    }

    #[test]
    fn builtin_sources_lower_to_the_hard_coded_models() {
        let geom = Geometry::new(2048);
        assert_eq!(
            lowered(&builtins::traditional_src(geom)),
            model_of(HashKind::Traditional, geom, IN_BITS)
        );
        assert_eq!(
            lowered(&builtins::xor_src(geom)),
            model_of(HashKind::Xor, geom, IN_BITS)
        );
        assert_eq!(
            lowered(&builtins::xor_folded_src(geom)),
            xor_folded_model(geom, IN_BITS)
        );
        assert_eq!(
            lowered(&builtins::pmod_src(geom)),
            model_of(HashKind::PrimeModulo, geom, IN_BITS)
        );
        assert_eq!(
            lowered(&builtins::pdisp_src(geom, 9)),
            model_of(HashKind::PrimeDisplacement, geom, IN_BITS)
        );
    }

    #[test]
    fn skew_bank_sources_lower_to_the_hard_coded_models() {
        let geom = Geometry::new(512);
        for bank in 0..4 {
            assert_eq!(
                lowered(&builtins::skew_xor_bank_src(geom, bank)),
                skew_xor_model(geom, bank, IN_BITS),
                "bank {bank}"
            );
        }
    }

    #[test]
    fn lowered_model_agrees_with_tree_eval() {
        for src in [
            "a & 2047",
            "(a ^ (a >> 11)) & 2047",
            "a % 2039",
            "((9 * (a >> 11)) + (a & 2047)) & 2047",
            "((a % 2039) ^ (a >> 13)) & 2047", // opaque
            "(a & 1023) % 2039",               // mod passthrough, linear
            "((a & 15) << 4) | (a >> 22)",     // disjoint or
            "(a & 3) + ((a >> 2) & 12)",       // carry-free add
        ] {
            let e = parse(src).unwrap();
            let m = lower_expr(&e, IN_BITS);
            for a in 0..(1u64 << 14) {
                assert_eq!(m.eval(a), e.eval(a), "{src} at a = {a:#x}");
            }
            let mask = input_mask(IN_BITS);
            let mut a = 1u64;
            for _ in 0..5_000 {
                a = a.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                assert_eq!(m.eval(a & mask), e.eval(a & mask), "{src}");
            }
        }
    }

    #[test]
    fn mixed_residue_xor_is_opaque() {
        let m = lowered("((a % 2039) ^ (a >> 13)) & 2047");
        assert!(matches!(m, IndexModel::Opaque { .. }), "{m:?}");
        assert_eq!(m.n_set(), 2048);
        assert!(m.conflict_generators().is_empty());
    }

    #[test]
    fn carrying_add_and_true_multiply_are_not_linear() {
        for src in ["(a + (a >> 11)) & 2047", "(a * 3) & 2047", "(a * 3) % 64"] {
            let e = fold(&parse(src).unwrap());
            assert!(lin(&e, IN_BITS).is_none(), "{src} must not be linear");
        }
    }

    #[test]
    fn constant_output_bits_must_be_zero_for_linear() {
        // `(a & 7) | 8` is bit-affine but with a constant 1 bit: not a
        // homogeneous linear map.
        let e = fold(&parse("(a & 7) | 8").unwrap());
        assert!(lower_linear(&e, IN_BITS).is_none());
        let m = lower_expr(&e, IN_BITS);
        assert!(matches!(m, IndexModel::Opaque { .. }));
        assert_eq!(m.eval(3), 11);
    }
}
