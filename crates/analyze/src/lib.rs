//! Static conflict-miss analysis of cache set-index functions.
//!
//! The simulator measures conflict misses; this crate *derives* them.
//! Every index function in `primecache_core` falls into one of three
//! algebraic families — GF(2)-linear (traditional, XOR, folded XOR, skew
//! banks), residue (prime modulo), affine mod `2^k` (prime displacement) —
//! and each family admits an exact symbolic model ([`IndexModel`]).
//!
//! From the model we compute, without running a single simulated access:
//!
//! * **rank / kernel** of the map (GF(2) Gaussian elimination),
//! * **conflict-stride generators** — the null-space values whose
//!   carry-free multiples collapse onto a single set,
//! * per-indexer **certificates** ([`Certificate`]): the permutation
//!   property, the Eq. 1 balance bound, sequence invariance, and the
//!   Theorem 1 strided-conflict-freedom verdict,
//! * **config lints** ([`lint_kind`] & friends) rejecting degenerate
//!   setups: composite moduli, even displacement factors, rank-deficient
//!   or duplicated skew banks.
//!
//! [`self_check`] cross-validates every static prediction against the
//! concrete indexers and brute-force conflict counting — exhaustively on
//! small geometries, by sampling on the paper's 512 KB L2.

pub mod canonical;
pub mod certificate;
pub mod gf2;
pub mod lint;
pub mod lower;
pub mod model;
pub mod report;
pub mod verify;

pub use canonical::{canonicalize, models_equivalent, CanonicalModel};
pub use certificate::{
    certify_all, certify_expr, certify_kind, certify_skew_disp_bank, certify_skew_xor_bank,
    certify_xor_folded, Certificate, Invariance, Theorem1,
};
pub use gf2::{input_mask, Gf2Matrix};
pub use lint::{
    has_errors, lint_displacement, lint_expr, lint_kind, lint_modulus, lint_skew_disp,
    lint_skew_xor, lint_sweep_shape, Lint, LintLevel,
};
pub use lower::lower_expr;
pub use model::{model_of, skew_disp_model, skew_xor_model, xor_folded_model, IndexModel};
pub use report::{
    canonical_json, certificate_json, lint_json, report_json, REPORT_SCHEMA, REPORT_VERSION,
};
pub use verify::{self_check, CheckResult, SelfCheck};
