//! Machine-readable (JSON) rendering of certificates and lints.
//!
//! The workspace's `serde` is an offline no-op shim, so this module
//! renders JSON by hand — the schema is small and stable, and the output
//! is consumed by scripts, not re-parsed by the workspace.

use crate::canonical::{canonicalize, CanonicalModel};
use crate::certificate::{Certificate, Theorem1};
use crate::lint::{Lint, LintLevel};

/// Schema identifier stamped into every [`report_json`] document, mirroring
/// the versioned `primecache.run-report` convention used by the simulator.
pub const REPORT_SCHEMA: &str = "primecache.analyze-report";

/// Schema version stamped into every [`report_json`] document. Bump when a
/// field is added, removed, or changes meaning.
///
/// History: v1 — certificates + lints; v2 — each certificate additionally
/// carries its `canonical` model form (the partition invariant the attack
/// differential oracle compares against; see DESIGN.md §4c for the
/// versioning policy).
pub const REPORT_VERSION: u32 = 2;

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_u64_array(values: &[u64], limit: usize) -> String {
    let shown: Vec<String> = values.iter().take(limit).map(u64::to_string).collect();
    format!("[{}]", shown.join(","))
}

fn theorem1_json(t: &Theorem1) -> String {
    match t {
        Theorem1::Holds { modulus } => {
            format!("{{\"verdict\":\"holds\",\"modulus\":{modulus}}}")
        }
        Theorem1::Fails { witness_stride } => {
            format!("{{\"verdict\":\"fails\",\"witness_stride\":{witness_stride}}}")
        }
        Theorem1::NoGuarantee => "{\"verdict\":\"no-guarantee\"}".to_owned(),
    }
}

/// Renders a canonical model form as a JSON object (the `canonical`
/// field of a v2 certificate and of attack-report entries).
#[must_use]
pub fn canonical_json(c: &CanonicalModel) -> String {
    let body = match c {
        CanonicalModel::Linear { in_bits, rows } => format!(
            "\"in_bits\":{in_bits},\"rows\":{}",
            json_u64_array(rows, rows.len())
        ),
        CanonicalModel::Residue { in_bits, modulus } => {
            format!("\"in_bits\":{in_bits},\"modulus\":{modulus}")
        }
        CanonicalModel::Affine {
            in_bits,
            index_bits,
            factor,
        } => format!("\"in_bits\":{in_bits},\"index_bits\":{index_bits},\"factor\":{factor}"),
        CanonicalModel::Opaque { in_bits, n_set } => {
            format!("\"in_bits\":{in_bits},\"n_set\":{n_set}")
        }
    };
    format!(
        "{{\"family\":{},{body},\"display\":{}}}",
        json_string(c.family()),
        json_string(&c.to_string())
    )
}

/// Renders one certificate as a JSON object. At most `stride_limit`
/// conflict-stride generators are emitted (they can number in the tens
/// for wide addresses).
#[must_use]
pub fn certificate_json(c: &Certificate, stride_limit: usize) -> String {
    format!(
        "{{\"name\":{},\"n_set\":{},\"in_bits\":{},\"rank\":{},\
         \"kernel_dim\":{},\"conflict_strides\":{},\"permutation\":{},\
         \"balanced\":{},\"balance_bound\":{},\"invariance\":{},\
         \"exact\":{},\"theorem1\":{},\"canonical\":{}}}",
        json_string(&c.name),
        c.n_set,
        c.in_bits,
        c.rank,
        c.kernel_dim,
        json_u64_array(&c.conflict_strides, stride_limit),
        c.permutation,
        c.balanced,
        c.balance_bound,
        json_string(c.invariance.label()),
        c.exact,
        theorem1_json(&c.theorem1),
        canonical_json(&canonicalize(&c.model)),
    )
}

/// Renders one lint finding as a JSON object.
#[must_use]
pub fn lint_json(l: &Lint) -> String {
    let level = match l.level {
        LintLevel::Error => "error",
        LintLevel::Warning => "warning",
    };
    format!(
        "{{\"level\":{},\"code\":{},\"message\":{}}}",
        json_string(level),
        json_string(l.code),
        json_string(&l.message),
    )
}

/// Renders the full analysis report: certificates plus lint findings.
#[must_use]
pub fn report_json(certs: &[Certificate], lints: &[Lint]) -> String {
    let cert_objs: Vec<String> = certs.iter().map(|c| certificate_json(c, 16)).collect();
    let lint_objs: Vec<String> = lints.iter().map(lint_json).collect();
    format!(
        "{{\"schema\":{},\"version\":{},\"certificates\":[{}],\"lints\":[{}]}}",
        json_string(REPORT_SCHEMA),
        REPORT_VERSION,
        cert_objs.join(","),
        lint_objs.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::certify_kind;
    use primecache_core::index::{Geometry, HashKind};

    #[test]
    fn certificate_json_has_the_headline_fields() {
        let c = certify_kind(HashKind::PrimeModulo, Geometry::new(2048), 26);
        let j = certificate_json(&c, 16);
        assert!(j.contains("\"name\":\"pMod\""));
        assert!(j.contains("\"n_set\":2039"));
        assert!(j.contains("\"verdict\":\"holds\""));
    }

    #[test]
    fn stride_limit_truncates() {
        let c = certify_kind(HashKind::Xor, Geometry::new(2048), 26);
        let j = certificate_json(&c, 2);
        let commas = j.split("\"conflict_strides\":[").nth(1).unwrap();
        let arr = &commas[..commas.find(']').unwrap()];
        assert_eq!(arr.split(',').count(), 2);
    }

    #[test]
    fn report_is_object_shaped() {
        let c = certify_kind(HashKind::Traditional, Geometry::new(64), 16);
        let j = report_json(&[c], &[]);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"lints\":[]"));
        assert!(j.contains("\"schema\":\"primecache.analyze-report\""));
        assert!(j.contains("\"version\":2"));
    }

    #[test]
    fn v2_certificates_carry_the_canonical_form() {
        let c = certify_kind(HashKind::PrimeModulo, Geometry::new(2048), 26);
        let j = certificate_json(&c, 16);
        assert!(j.contains("\"canonical\":{\"family\":\"residue\""));
        assert!(j.contains("\"modulus\":2039"));
        let lin = certify_kind(HashKind::Traditional, Geometry::new(64), 16);
        let j = certificate_json(&lin, 16);
        assert!(j.contains("\"family\":\"linear\""));
        assert!(j.contains("\"rows\":[1,2,4,8,16,32]"));
    }

    #[test]
    fn exact_flag_is_emitted() {
        let c = certify_kind(HashKind::PrimeModulo, Geometry::new(2048), 26);
        assert!(certificate_json(&c, 16).contains("\"exact\":true"));
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
