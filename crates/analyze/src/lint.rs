//! Config lint pass: statically reject degenerate cache-indexing setups.
//!
//! The simulator will happily run a "prime" modulo cache with a composite
//! modulus, a prime-displacement cache with an even factor, or a skewed
//! cache whose banks all hash identically — and silently produce wrecked
//! hit rates. Each lint here is the static form of one such failure:
//!
//! | code | level | degenerate setup |
//! |---|---|---|
//! | `non-prime-modulus` | error | `pMod` modulus with a nontrivial factor |
//! | `modulus-exceeds-geometry` | error | modulus above the physical set count |
//! | `even-displacement-factor` | error | `pDisp` factor not in the odd unit group |
//! | `weak-displacement-factor` | warning | effective factor 1: tags barely displaced |
//! | `rank-deficient-skew-bank` | error | a skew matrix that is not a permutation |
//! | `duplicate-skew-banks` | error | two banks with the identical map |
//! | `duplicate-skew-factors` | error | two pDisp banks sharing a factor |
//! | `high-fragmentation` | warning | > 5% of physical sets wasted |
//! | `pathological-null-space` | warning | XOR-family conflict stride ≤ 4·n_set |
//! | `idle-sweep-workers` | warning | sweep dispatches fewer tasks than workers |
//! | `set-space-exceeds-geometry` | error | expression addresses more sets than exist |
//! | `rank-deficient-linear-map` | error | expression's GF(2) map misses output bits |
//! | `opaque-index-model` | warning | expression certified by sampling only |
//!
//! Errors mean the configuration defeats the scheme's own premise;
//! warnings flag hazards the paper itself documents (§3.3) or sweeps
//! that cannot use the machine they run on.

use primecache_core::expr::ExprId;
use primecache_core::index::{Geometry, HashKind};
use primecache_primes::{factorize, is_prime};

use crate::lower::lower_expr;
use crate::model::{model_of, skew_xor_model, IndexModel};

/// Severity of a lint finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintLevel {
    /// The configuration defeats the indexing scheme's premise.
    Error,
    /// A documented hazard worth surfacing, not a misconfiguration.
    Warning,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Severity.
    pub level: LintLevel,
    /// Stable machine-readable code (kebab-case).
    pub code: &'static str,
    /// Human-readable explanation with the offending values.
    pub message: String,
}

impl Lint {
    fn error(code: &'static str, message: String) -> Self {
        Self {
            level: LintLevel::Error,
            code,
            message,
        }
    }

    fn warning(code: &'static str, message: String) -> Self {
        Self {
            level: LintLevel::Warning,
            code,
            message,
        }
    }
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let level = match self.level {
            LintLevel::Error => "error",
            LintLevel::Warning => "warning",
        };
        write!(f, "{level}[{}]: {}", self.code, self.message)
    }
}

/// True when `lints` contains at least one error-level finding.
#[must_use]
pub fn has_errors(lints: &[Lint]) -> bool {
    lints.iter().any(|l| l.level == LintLevel::Error)
}

/// Lints an explicit prime-modulo modulus against its geometry.
#[must_use]
pub fn lint_modulus(geom: Geometry, modulus: u64) -> Vec<Lint> {
    let mut out = Vec::new();
    if modulus == 0 {
        out.push(Lint::error(
            "modulus-exceeds-geometry",
            "modulus 0 indexes nothing".to_owned(),
        ));
        return out;
    }
    if modulus > geom.n_set_phys() {
        out.push(Lint::error(
            "modulus-exceeds-geometry",
            format!(
                "modulus {modulus} exceeds the {} physical sets",
                geom.n_set_phys()
            ),
        ));
    }
    if !is_prime(modulus) {
        let factors: Vec<String> = factorize(modulus)
            .into_iter()
            .map(|(p, e)| {
                if e == 1 {
                    p.to_string()
                } else {
                    format!("{p}^{e}")
                }
            })
            .collect();
        out.push(Lint::error(
            "non-prime-modulus",
            format!(
                "modulus {modulus} = {} is composite: strides that are \
                 multiples of any factor conflict systematically",
                factors.join(" * ")
            ),
        ));
    }
    let delta = geom.n_set_phys().saturating_sub(modulus);
    if modulus <= geom.n_set_phys() && delta * 20 > geom.n_set_phys() {
        out.push(Lint::warning(
            "high-fragmentation",
            format!(
                "{delta} of {} physical sets ({:.1}%) are never indexed",
                geom.n_set_phys(),
                delta as f64 / geom.n_set_phys() as f64 * 100.0
            ),
        ));
    }
    out
}

/// Lints a prime-displacement factor against its geometry.
#[must_use]
pub fn lint_displacement(geom: Geometry, factor: u64) -> Vec<Lint> {
    let mut out = Vec::new();
    if factor.is_multiple_of(2) {
        out.push(Lint::error(
            "even-displacement-factor",
            format!(
                "factor {factor} is even: not invertible mod 2^{}, tags \
                 collapse pairwise (footnote 2)",
                geom.index_bits()
            ),
        ));
    } else if factor & geom.index_mask() == 1 {
        out.push(Lint::warning(
            "weak-displacement-factor",
            format!(
                "factor {factor} ≡ 1 mod 2^{}: consecutive tags displace by \
                 a single set, preserving conflict layouts",
                geom.index_bits()
            ),
        ));
    }
    out
}

/// Lints a bank of Seznec skew functions: every bank matrix must be a
/// full-rank permutation, and no two banks may hash identically.
#[must_use]
pub fn lint_skew_xor(geom: Geometry, banks: u32) -> Vec<Lint> {
    let mut out = Vec::new();
    let in_bits = (2 * geom.index_bits()).min(64);
    let models: Vec<IndexModel> = (0..banks)
        .map(|b| skew_xor_model(geom, b, in_bits))
        .collect();
    for (b, model) in models.iter().enumerate() {
        if let IndexModel::Linear(m) = model {
            if m.rank() < m.out_bits() {
                out.push(Lint::error(
                    "rank-deficient-skew-bank",
                    format!(
                        "bank {b}: rank {} < {} index bits — some sets are \
                         unreachable",
                        m.rank(),
                        m.out_bits()
                    ),
                ));
            }
        }
    }
    for a in 0..models.len() {
        for b in a + 1..models.len() {
            if models[a] == models[b] {
                out.push(Lint::error(
                    "duplicate-skew-banks",
                    format!(
                        "banks {a} and {b} share the identical hash (shift \
                         wraps at {} index bits): no inter-bank dispersion",
                        geom.index_bits()
                    ),
                ));
            }
        }
    }
    out
}

/// Lints the per-bank factors of a prime-displacement skewed cache.
#[must_use]
pub fn lint_skew_disp(geom: Geometry, factors: &[u64]) -> Vec<Lint> {
    let mut out = Vec::new();
    for &f in factors {
        out.extend(lint_displacement(geom, f));
    }
    for a in 0..factors.len() {
        for b in a + 1..factors.len() {
            if factors[a] & geom.index_mask() == factors[b] & geom.index_mask() {
                out.push(Lint::error(
                    "duplicate-skew-factors",
                    format!(
                        "banks {a} and {b} share effective factor {} mod 2^{}: \
                         identical maps, no inter-bank dispersion",
                        factors[a] & geom.index_mask(),
                        geom.index_bits()
                    ),
                ));
            }
        }
    }
    out
}

/// Lints the shape of a parallel sweep: `n_tasks` `(workload, scheme)`
/// cells dispatched over `n_workers` threads.
///
/// The sweep scheduler's claim loop hands each task to exactly one
/// worker, so any worker beyond the task count spins up, claims
/// nothing, and exits — harmless, but a sign the sweep config
/// (scheme × workload grid) is too small for the machine and the run's
/// wall-clock will not reflect its parallelism.
#[must_use]
pub fn lint_sweep_shape(n_tasks: usize, n_workers: usize) -> Vec<Lint> {
    let mut out = Vec::new();
    if n_tasks < n_workers {
        out.push(Lint::warning(
            "idle-sweep-workers",
            format!(
                "sweep dispatches {n_tasks} task{} over {n_workers} workers: \
                 {} worker{} never claim a task",
                if n_tasks == 1 { "" } else { "s" },
                n_workers - n_tasks,
                if n_workers - n_tasks == 1 { "" } else { "s" },
            ),
        ));
    }
    out
}

/// Lints one single-function [`HashKind`] configuration over a geometry —
/// the entry point the simulator's suite construction calls.
#[must_use]
pub fn lint_kind(kind: HashKind, geom: Geometry) -> Vec<Lint> {
    match kind {
        HashKind::Traditional | HashKind::Xor => {
            let in_bits = (2 * geom.index_bits()).min(64);
            let model = model_of(kind, geom, in_bits);
            let mut out = Vec::new();
            if let Some(&d) = model.conflict_generators().first() {
                if d <= geom.n_set_phys() * 4 {
                    out.push(Lint::warning(
                        "pathological-null-space",
                        format!(
                            "{}: carry-free multiples of stride {d} collapse \
                             onto one set (null-space generator)",
                            kind.label()
                        ),
                    ));
                }
            }
            out
        }
        HashKind::PrimeModulo => {
            let modulus = primecache_primes::prev_prime(geom.n_set_phys())
                .expect("geometry guarantees n_set_phys >= 2");
            lint_modulus(geom, modulus)
        }
        HashKind::PrimeDisplacement => lint_displacement(geom, 9),
        HashKind::Expr(id) => lint_expr(geom, id),
    }
}

/// Lints a registered DSL expression against a geometry: the certificate
/// gate for user-defined schemes.
///
/// The expression is lowered over the **full 64-bit address** (so rank
/// and null-space findings describe the map the cache will actually run,
/// not a windowed restriction) and judged by the family it lands in:
///
/// * **Residue** — the modulus must be prime and fit the geometry
///   ([`lint_modulus`]): a composite modulus is exactly the degenerate
///   "pMod" the paper's Theorem 1 assumes away, and is rejected.
/// * **Affine** — the factor must be odd ([`lint_displacement`]).
/// * **Linear** — the map must reach every output bit
///   (`rank-deficient-linear-map` error), and a small null-space
///   generator is surfaced like the built-in XOR lints.
/// * **Opaque** — certified by sampling only: a warning, so simulation
///   proceeds but the run is visibly uncertified.
///
/// Any expression addressing more sets than physically exist is an error
/// regardless of family.
#[must_use]
pub fn lint_expr(geom: Geometry, id: ExprId) -> Vec<Lint> {
    let mut out = Vec::new();
    if id.n_set() > geom.n_set_phys() {
        out.push(Lint::error(
            "set-space-exceeds-geometry",
            format!(
                "`{}` addresses {} sets but the geometry has only {} — \
                 mask or reduce the result",
                id.source(),
                id.n_set(),
                geom.n_set_phys()
            ),
        ));
        return out;
    }
    match lower_expr(id.folded(), 64) {
        IndexModel::Residue { modulus, .. } => out.extend(lint_modulus(geom, modulus)),
        IndexModel::Affine { factor, .. } => out.extend(lint_displacement(geom, factor)),
        model @ IndexModel::Linear(_) => {
            if let IndexModel::Linear(m) = &model {
                if m.rank() < m.out_bits() {
                    out.push(Lint::error(
                        "rank-deficient-linear-map",
                        format!(
                            "`{}`: rank {} < {} output bits — some sets are \
                             unreachable",
                            id.source(),
                            m.rank(),
                            m.out_bits()
                        ),
                    ));
                }
            }
            if let Some(&d) = model.conflict_generators().first() {
                if d <= geom.n_set_phys() * 4 {
                    out.push(Lint::warning(
                        "pathological-null-space",
                        format!(
                            "{}: carry-free multiples of stride {d} collapse \
                             onto one set (null-space generator)",
                            id.name()
                        ),
                    ));
                }
            }
        }
        IndexModel::Opaque { n_set, .. } => {
            out.push(Lint::warning(
                "opaque-index-model",
                format!(
                    "`{}` matches no exact algebraic family: its certificate \
                     is sampled, not proved",
                    id.source()
                ),
            ));
            out.push(Lint::warning(
                "brute-force-certification",
                format!(
                    "`{}` lowers to the Opaque fallback: certification \
                     degrades to brute-force sampling over up to {n_set} \
                     sets, and black-box recovery (`pcache attack`) can \
                     only declare it Opaque, never reconstruct it",
                    id.source()
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_modulus_is_clean() {
        assert!(lint_modulus(Geometry::new(2048), 2039).is_empty());
    }

    #[test]
    fn composite_modulus_is_an_error() {
        let lints = lint_modulus(Geometry::new(2048), 2047);
        assert!(has_errors(&lints));
        assert!(lints.iter().any(|l| l.code == "non-prime-modulus"));
        assert!(lints[0].message.contains("23"), "{}", lints[0].message);
    }

    #[test]
    fn oversized_modulus_is_an_error() {
        let lints = lint_modulus(Geometry::new(64), 67);
        assert!(lints.iter().any(|l| l.code == "modulus-exceeds-geometry"));
    }

    #[test]
    fn tiny_prime_modulus_warns_about_fragmentation() {
        // 31 of 64 sets wasted: prime, but pathologically fragmented.
        let lints = lint_modulus(Geometry::new(64), 33);
        assert!(has_errors(&lints)); // 33 = 3 * 11
        let lints = lint_modulus(Geometry::new(64), 31);
        assert!(!has_errors(&lints));
        assert!(lints.iter().any(|l| l.code == "high-fragmentation"));
    }

    #[test]
    fn even_factor_is_an_error() {
        let lints = lint_displacement(Geometry::new(2048), 8);
        assert!(has_errors(&lints));
        assert_eq!(lints[0].code, "even-displacement-factor");
    }

    #[test]
    fn factor_one_warns() {
        let lints = lint_displacement(Geometry::new(2048), 2049);
        assert!(!has_errors(&lints));
        assert_eq!(lints[0].code, "weak-displacement-factor");
        assert!(lint_displacement(Geometry::new(2048), 9).is_empty());
    }

    #[test]
    fn four_skew_banks_are_clean_but_wrapping_duplicates_error() {
        assert!(lint_skew_xor(Geometry::new(512), 4).is_empty());
        // 10 banks over 9 index bits: bank 9 wraps onto bank 0.
        let lints = lint_skew_xor(Geometry::new(512), 10);
        assert!(has_errors(&lints));
        assert!(lints.iter().any(|l| l.code == "duplicate-skew-banks"));
    }

    #[test]
    fn duplicate_disp_factors_error() {
        let lints = lint_skew_disp(Geometry::new(512), &[9, 19, 9, 37]);
        assert!(has_errors(&lints));
        assert!(lints.iter().any(|l| l.code == "duplicate-skew-factors"));
        assert!(lint_skew_disp(Geometry::new(512), &[9, 19, 31, 37]).is_empty());
    }

    #[test]
    fn kind_lints_match_the_paper() {
        let geom = Geometry::new(2048);
        // The paper's recommended schemes lint clean.
        assert!(lint_kind(HashKind::PrimeModulo, geom).is_empty());
        assert!(lint_kind(HashKind::PrimeDisplacement, geom).is_empty());
        // Base and XOR carry their documented stride hazards as warnings.
        let base = lint_kind(HashKind::Traditional, geom);
        assert!(!has_errors(&base) && !base.is_empty());
        let xor = lint_kind(HashKind::Xor, geom);
        assert!(!has_errors(&xor));
        assert!(xor[0].message.contains("2049"), "{}", xor[0].message);
    }

    #[test]
    fn undersized_sweep_warns_about_idle_workers() {
        let lints = lint_sweep_shape(3, 16);
        assert!(!has_errors(&lints));
        assert_eq!(lints[0].code, "idle-sweep-workers");
        assert!(
            lints[0].message.contains("13 workers never"),
            "{}",
            lints[0].message
        );
        // One idle worker uses the singular form.
        let lints = lint_sweep_shape(15, 16);
        assert!(
            lints[0].message.contains("1 worker never"),
            "{}",
            lints[0].message
        );
    }

    #[test]
    fn saturating_sweep_shapes_are_clean() {
        assert!(lint_sweep_shape(115, 16).is_empty());
        assert!(lint_sweep_shape(16, 16).is_empty());
        // The scheduler clamps workers to the task count, so equality
        // after clamping is always reachable and must stay clean.
        assert!(lint_sweep_shape(0, 0).is_empty());
    }

    #[test]
    fn lint_display_includes_level_and_code() {
        let l = Lint::error("non-prime-modulus", "boom".to_owned());
        assert_eq!(l.to_string(), "error[non-prime-modulus]: boom");
    }
}
