//! Black-box recovery of cache set-index functions, and the price of
//! attacking them.
//!
//! The static analyzer (`primecache-analyze`) *derives* each scheme's
//! conflict structure from its definition. This crate plays the opposing
//! role: it is handed an opaque cache it may only probe with crafted
//! address traces — observing nothing but miss counts, the position the
//! Sandy Bridge hash reverse-engineering work starts from — and tries to
//! reconstruct the index function's structure:
//!
//! * **residue-class inference** (ascending stride scan + gcd-free
//!   verification) recovers `a mod m` schemes such as pMod,
//! * a **GF(2) class-labeling solve** over same-set probe pairs recovers
//!   any bit-linear scheme (Base, XOR, folded XOR) up to the invariant a
//!   conflict observer can see — the row space,
//! * **bitwise factor probing** recovers the affine prime-displacement
//!   family `(p·T + x) mod 2^k`,
//! * anything that survives all three verified hypotheses is declared
//!   **Opaque** — an honest "no exact model fits", which is itself the
//!   correct answer for skewed multi-bank organizations.
//!
//! The recovered model and the static model meet in the **differential
//! oracle**: `canonicalize(recovered) == canonicalize(static)`
//! (`primecache_analyze::canonical`), so each side checks the other.
//! [`evict`] measures the complementary hardness metric — what an
//! eviction set costs to build per scheme, for a naive strided attacker,
//! a random-pool attacker, and an informed attacker armed with the
//! recovered model.

pub mod evict;
pub mod recover;
pub mod report;

pub use evict::{eviction_cost, EvictConfig, EvictionCost, TierCost};
pub use recover::{recover, Recovery, RecoveryConfig, Verdict};
pub use report::{attack_report_json, AttackEntry, ATTACK_REPORT_SCHEMA, ATTACK_REPORT_VERSION};
