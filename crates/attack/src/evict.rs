//! Eviction-set construction cost, measured per attacker tier.
//!
//! An *eviction set* for a victim block is a set of addresses whose
//! accesses evict the victim — the primitive behind Prime+Probe and the
//! metric by which the paper's prime-indexed schemes claim hardening:
//! the classic way to build one is a stride ladder, and Theorem 1 says
//! no naive stride is a multiple of a prime modulus. This module makes
//! that claim quantitative by charging three attacker models against the
//! same probe oracle:
//!
//! 1. **naive-stride** — walk [`naive_strides`] (set-count multiples,
//!    `n ± 1`, powers of two) and test one eviction probe per stride.
//!    Traditional indexing falls to stride `n`, XOR to `n + 1`, and
//!    prime displacement to the tag-annihilation stride `2^(2k)`; only
//!    pMod survives the whole ladder.
//! 2. **random-pool** — only when the ladder fails: grow a seeded random
//!    pool until it evicts, then shrink it by group testing (remove one
//!    of `W + 1` groups per round; for a set-associative LRU cache the
//!    pigeonhole argument guarantees a removable group, so the loop
//!    provably makes progress down to `W` members). Budgeted in
//!    simulated references, and honest about failure: a skewed cache is
//!    *expected* to exhaust the budget.
//! 3. **informed** — always measured: an attacker who first runs
//!    [`crate::recover()`] and then *constructs* `W` conflicting partners
//!    directly from the recovered model. Its cost includes the recovery
//!    campaign — which is the honest negative result: once structure
//!    recovery is on the table, pMod's naive-tier advantage shrinks to
//!    the (comparable) cost of the recovery itself.

use primecache_analyze::{input_mask, IndexModel};
use primecache_core::probe::{ProbeCost, ProbeOracle};
use primecache_workloads::probe::{naive_strides, random_pool, stride_candidates};

/// Tuning knobs for [`eviction_cost`].
#[derive(Debug, Clone, Copy)]
pub struct EvictConfig {
    /// Seed for the random-pool tier.
    pub seed: u64,
    /// Pool-size ceiling for the random-pool tier; doubling stops here.
    pub max_pool: usize,
    /// Simulated-reference budget for the random-pool tier (growth and
    /// reduction combined).
    pub ref_budget: u64,
    /// Skip group-test reduction above this associativity (a
    /// fully-associative probe's "ways" are its whole capacity, where
    /// any set that evicts is already minimal in the interesting sense).
    pub reduce_max_ways: u32,
}

impl Default for EvictConfig {
    fn default() -> Self {
        Self {
            seed: 0xE71C7,
            max_pool: 1 << 17,
            ref_budget: 1_000_000,
            reduce_max_ways: 64,
        }
    }
}

/// Outcome and cost of one attacker tier.
#[derive(Debug, Clone)]
pub struct TierCost {
    /// Tier name: `naive-stride`, `random-pool`, or `informed`.
    pub tier: &'static str,
    /// Whether this tier produced a working eviction set.
    pub success: bool,
    /// Probes and simulated references charged to this tier (for the
    /// informed tier this includes the recovery campaign).
    pub cost: ProbeCost,
    /// Size of the final eviction set (0 on failure).
    pub set_size: usize,
    /// Human-readable outcome (winning stride, final pool size, reason
    /// for failure).
    pub detail: String,
}

/// Per-scheme eviction-set construction cost, all tiers.
#[derive(Debug, Clone)]
pub struct EvictionCost {
    /// The victim block the sets were built against.
    pub victim: u64,
    /// Associativity of the probed organization (`W`).
    pub assoc: u32,
    /// One entry per tier, in escalation order.
    pub tiers: Vec<TierCost>,
    /// Name of the first (cheapest) successful tier, if any.
    pub first_success: Option<&'static str>,
}

impl EvictionCost {
    /// The tier record by name, if it ran.
    #[must_use]
    pub fn tier(&self, name: &str) -> Option<&TierCost> {
        self.tiers.iter().find(|t| t.tier == name)
    }
}

/// Measures eviction-set construction cost against `oracle` for all
/// three attacker tiers. `informed_model` is the output of a prior
/// [`crate::recover()`] run (None when the verdict was Opaque), and
/// `recovery_cost` is what that run cost — charged to the informed tier.
pub fn eviction_cost(
    oracle: &mut dyn ProbeOracle,
    informed_model: Option<&IndexModel>,
    recovery_cost: ProbeCost,
    cfg: &EvictConfig,
) -> EvictionCost {
    let victim = 0u64;
    let assoc = oracle.assoc();
    let mut tiers = Vec::with_capacity(3);

    let naive = naive_tier(oracle, victim, assoc);
    let naive_won = naive.success;
    tiers.push(naive);

    if naive_won {
        tiers.push(TierCost {
            tier: "random-pool",
            success: false,
            cost: ProbeCost::default(),
            set_size: 0,
            detail: "skipped: naive-stride tier already succeeded".to_owned(),
        });
    } else {
        tiers.push(random_tier(oracle, victim, assoc, cfg));
    }

    tiers.push(informed_tier(
        oracle,
        victim,
        assoc,
        informed_model,
        recovery_cost,
    ));

    let first_success = tiers.iter().find(|t| t.success).map(|t| t.tier);
    EvictionCost {
        victim,
        assoc,
        tiers,
        first_success,
    }
}

/// Tier 1: one eviction probe per ladder stride.
fn naive_tier(oracle: &mut dyn ProbeOracle, victim: u64, assoc: u32) -> TierCost {
    let before = oracle.cost();
    let in_bits = oracle.in_bits();
    for stride in naive_strides(oracle.n_set_phys(), in_bits) {
        let cands = stride_candidates(victim, stride, assoc, in_bits);
        if cands.len() < assoc as usize {
            continue; // ladder stride does not fit the probing window
        }
        if oracle.evicts(victim, &cands) {
            return TierCost {
                tier: "naive-stride",
                success: true,
                cost: oracle.cost().since(before),
                set_size: cands.len(),
                detail: format!("stride {stride} evicts"),
            };
        }
    }
    TierCost {
        tier: "naive-stride",
        success: false,
        cost: oracle.cost().since(before),
        set_size: 0,
        detail: "no ladder stride evicts".to_owned(),
    }
}

/// Tier 2: grow a seeded random pool until it evicts, then group-test it
/// down toward `W` members.
fn random_tier(
    oracle: &mut dyn ProbeOracle,
    victim: u64,
    assoc: u32,
    cfg: &EvictConfig,
) -> TierCost {
    let before = oracle.cost();
    let in_bits = oracle.in_bits();
    let over = |oracle: &mut dyn ProbeOracle| oracle.cost().since(before).refs > cfg.ref_budget;

    // Growth: expected W blocks per set needs ~W·n_set blocks total.
    let mut size = (assoc as u64)
        .saturating_mul(oracle.n_set_phys())
        .clamp(assoc as u64 + 1, cfg.max_pool as u64) as usize;
    let mut set: Option<Vec<u64>> = None;
    loop {
        let pool = random_pool(cfg.seed, size, in_bits, victim);
        if oracle.evicts(victim, &pool) {
            set = Some(pool);
            break;
        }
        if size >= cfg.max_pool || over(oracle) {
            break;
        }
        size = (size * 2).min(cfg.max_pool);
    }
    let Some(mut set) = set else {
        let spent = oracle.cost().since(before);
        return TierCost {
            tier: "random-pool",
            success: false,
            cost: spent,
            set_size: 0,
            detail: format!(
                "no pool up to {size} blocks evicts within {} refs",
                spent.refs
            ),
        };
    };

    // Reduction: drop one of W+1 groups per round while the remainder
    // still evicts.
    let w = assoc as usize;
    if assoc <= cfg.reduce_max_ways {
        'reduce: while set.len() > w && !over(oracle) {
            let groups = w + 1;
            let chunk = set.len().div_ceil(groups);
            for g in 0..groups {
                let lo = g * chunk;
                let hi = ((g + 1) * chunk).min(set.len());
                if lo >= hi {
                    continue;
                }
                let mut candidate = Vec::with_capacity(set.len() - (hi - lo));
                candidate.extend_from_slice(&set[..lo]);
                candidate.extend_from_slice(&set[hi..]);
                if candidate.len() >= w && oracle.evicts(victim, &candidate) {
                    set = candidate;
                    continue 'reduce;
                }
            }
            break; // no removable group (expected for skewed organizations)
        }
    }
    TierCost {
        tier: "random-pool",
        success: true,
        cost: oracle.cost().since(before),
        set_size: set.len(),
        detail: format!("reduced to {} blocks", set.len()),
    }
}

/// Tier 3: construct `W` conflicting partners from the recovered model
/// and confirm with a single eviction probe.
fn informed_tier(
    oracle: &mut dyn ProbeOracle,
    victim: u64,
    assoc: u32,
    model: Option<&IndexModel>,
    recovery_cost: ProbeCost,
) -> TierCost {
    let before = oracle.cost();
    let fail = |oracle: &mut dyn ProbeOracle, detail: String| TierCost {
        tier: "informed",
        success: false,
        cost: recovery_cost + oracle.cost().since(before),
        set_size: 0,
        detail,
    };
    let Some(model) = model else {
        return fail(
            oracle,
            "recovery declared the scheme Opaque: no model to construct from".to_owned(),
        );
    };
    let Some(partners) = conflict_partners(model, victim, assoc as usize, oracle.in_bits()) else {
        return fail(
            oracle,
            format!("model predicts fewer than {assoc} conflicting partners in the window"),
        );
    };
    let success = oracle.evicts(victim, &partners);
    TierCost {
        tier: "informed",
        success,
        cost: recovery_cost + oracle.cost().since(before),
        set_size: if success { partners.len() } else { 0 },
        detail: if success {
            format!(
                "{} constructed partners + 1 confirming probe",
                partners.len()
            )
        } else {
            "constructed partners failed the confirming probe".to_owned()
        },
    }
}

/// `count` distinct blocks the model maps to the victim's set, built
/// directly from the model's structure.
fn conflict_partners(
    model: &IndexModel,
    victim: u64,
    count: usize,
    in_bits: u32,
) -> Option<Vec<u64>> {
    let window = input_mask(in_bits);
    let mut out = Vec::with_capacity(count);
    match model {
        IndexModel::Residue { modulus, .. } => {
            let mut b = victim;
            while out.len() < count {
                b = b.checked_add(*modulus)?;
                if b > window {
                    return None;
                }
                out.push(b);
            }
        }
        IndexModel::Linear(matrix) => {
            // Distinct nonzero combinations of the kernel basis.
            let kernel = matrix.kernel_basis();
            let combos = 1u128 << kernel.len().min(40);
            let mut mask = 1u128;
            while out.len() < count {
                if mask >= combos {
                    return None;
                }
                let mut d = 0u64;
                for (i, &k) in kernel.iter().enumerate() {
                    if (mask >> i) & 1 == 1 {
                        d ^= k;
                    }
                }
                mask += 1;
                let b = victim ^ d;
                if d != 0 && b <= window {
                    out.push(b);
                }
            }
        }
        IndexModel::Affine {
            factor, index_bits, ..
        } => {
            let k = *index_bits;
            let set_mask = input_mask(k);
            let target = model.eval(victim);
            let vt = victim >> k;
            let max_tag = window >> k;
            let mut t = 0u64;
            while out.len() < count {
                if t > max_tag {
                    return None;
                }
                if t != vt {
                    let x = target.wrapping_sub(factor.wrapping_mul(t)) & set_mask;
                    out.push((t << k) | x);
                }
                t += 1;
            }
        }
        IndexModel::Opaque { .. } => return None,
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use primecache_core::probe::ModelOracle;

    #[test]
    fn traditional_falls_to_the_naive_ladder() {
        let mut oracle = ModelOracle::new(|a| a % 64, 64, 4, 16);
        let out = eviction_cost(
            &mut oracle,
            None,
            ProbeCost::default(),
            &EvictConfig::default(),
        );
        assert_eq!(out.first_success, Some("naive-stride"));
        let naive = out.tier("naive-stride").unwrap();
        assert!(naive.success);
        assert_eq!(naive.set_size, 4);
        assert!(naive.detail.contains("stride 64"));
        // Skipped tier is recorded as such.
        assert!(!out.tier("random-pool").unwrap().success);
    }

    #[test]
    fn prime_modulus_resists_naive_but_not_the_random_pool() {
        let mut oracle = ModelOracle::new(|a| a % 61, 64, 2, 16);
        let out = eviction_cost(
            &mut oracle,
            None,
            ProbeCost::default(),
            &EvictConfig::default(),
        );
        assert_eq!(out.first_success, Some("random-pool"));
        let pool = out.tier("random-pool").unwrap();
        assert!(pool.success);
        assert_eq!(pool.set_size, 2, "group testing should reach W");
        assert!(pool.cost.refs > out.tier("naive-stride").unwrap().cost.refs);
    }

    #[test]
    fn informed_tier_constructs_from_the_model_and_charges_recovery() {
        let mut oracle = ModelOracle::new(|a| a % 61, 64, 2, 16);
        let model = IndexModel::Residue {
            modulus: 61,
            in_bits: 16,
        };
        let recovery = ProbeCost {
            probes: 100,
            refs: 300,
        };
        let out = eviction_cost(&mut oracle, Some(&model), recovery, &EvictConfig::default());
        let informed = out.tier("informed").unwrap();
        assert!(informed.success);
        assert_eq!(informed.set_size, 2);
        assert!(informed.cost.probes > 100 && informed.cost.refs > 300);
    }

    #[test]
    fn opaque_verdict_leaves_the_informed_tier_empty_handed() {
        let mut oracle = ModelOracle::new(|a| a % 64, 64, 4, 16);
        let out = eviction_cost(
            &mut oracle,
            None,
            ProbeCost::default(),
            &EvictConfig::default(),
        );
        let informed = out.tier("informed").unwrap();
        assert!(!informed.success);
        assert!(informed.detail.contains("Opaque"));
    }

    #[test]
    fn affine_partners_land_in_the_victim_set() {
        let model = IndexModel::Affine {
            factor: 9,
            index_bits: 6,
            in_bits: 16,
        };
        let partners = conflict_partners(&model, 5, 8, 16).unwrap();
        assert_eq!(partners.len(), 8);
        for p in partners {
            assert_eq!(model.eval(p), model.eval(5));
            assert_ne!(p, 5);
        }
    }
}
