//! Machine-readable (JSON) rendering of an attack campaign.
//!
//! Same hand-rolled convention as `primecache_analyze::report`: the
//! workspace's `serde` is an offline no-op shim, so the schema is
//! rendered directly — it is small, versioned, and consumed by scripts.

use primecache_analyze::{canonical_json, canonicalize};

use crate::evict::EvictionCost;
use crate::recover::{Recovery, Verdict};

/// Schema identifier stamped into every [`attack_report_json`] document.
pub const ATTACK_REPORT_SCHEMA: &str = "primecache.attack-report";

/// Schema version. Bump when a field is added, removed, or changes
/// meaning (same policy as `primecache.analyze-report`; see DESIGN.md
/// §4c).
///
/// History: v1 — recovery verdict + per-phase cost + differential
/// agreement + three-tier eviction-set cost.
pub const ATTACK_REPORT_VERSION: u32 = 1;

/// One scheme's worth of attack results: what was recovered, whether it
/// agrees with the static analyzer, and what eviction sets cost.
#[derive(Debug, Clone)]
pub struct AttackEntry {
    /// Scheme label (`Base`, `pMod`, an `expr:` source, ...).
    pub scheme: String,
    /// The black-box recovery outcome.
    pub recovery: Recovery,
    /// The differential-oracle verdict against the static model.
    pub agrees_static: bool,
    /// The static model's canonical form, when one exists (skewed
    /// organizations have none).
    pub static_canonical: Option<primecache_analyze::CanonicalModel>,
    /// Three-tier eviction-set construction cost.
    pub eviction: EvictionCost,
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn recovery_json(r: &Recovery) -> String {
    let (canonical, reasons) = match &r.verdict {
        Verdict::Model(m) => (canonical_json(&canonicalize(m)), "[]".to_owned()),
        Verdict::Opaque { reasons } => (
            "null".to_owned(),
            format!(
                "[{}]",
                reasons
                    .iter()
                    .map(|s| json_string(s))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        ),
    };
    let phases: Vec<String> = r
        .phases
        .iter()
        .map(|p| {
            format!(
                "{{\"phase\":{},\"probes\":{},\"refs\":{}}}",
                json_string(p.phase),
                p.cost.probes,
                p.cost.refs
            )
        })
        .collect();
    format!(
        "{{\"family\":{},\"canonical\":{canonical},\"opaque_reasons\":{reasons},\
         \"probes\":{},\"refs\":{},\"phases\":[{}]}}",
        json_string(r.verdict.family()),
        r.cost.probes,
        r.cost.refs,
        phases.join(",")
    )
}

fn eviction_json(e: &EvictionCost) -> String {
    let tiers: Vec<String> = e
        .tiers
        .iter()
        .map(|t| {
            format!(
                "{{\"tier\":{},\"success\":{},\"probes\":{},\"refs\":{},\
                 \"set_size\":{},\"detail\":{}}}",
                json_string(t.tier),
                t.success,
                t.cost.probes,
                t.cost.refs,
                t.set_size,
                json_string(&t.detail)
            )
        })
        .collect();
    let first = e.first_success.map_or("null".to_owned(), json_string);
    format!(
        "{{\"victim\":{},\"assoc\":{},\"first_success\":{first},\"tiers\":[{}]}}",
        e.victim,
        e.assoc,
        tiers.join(",")
    )
}

/// Renders one entry as a JSON object.
#[must_use]
pub fn entry_json(e: &AttackEntry) -> String {
    let statik = e
        .static_canonical
        .as_ref()
        .map_or("null".to_owned(), canonical_json);
    format!(
        "{{\"scheme\":{},\"recovery\":{},\"agrees_static\":{},\
         \"static_canonical\":{statik},\"eviction\":{}}}",
        json_string(&e.scheme),
        recovery_json(&e.recovery),
        e.agrees_static,
        eviction_json(&e.eviction)
    )
}

/// Renders the full attack report.
#[must_use]
pub fn attack_report_json(entries: &[AttackEntry]) -> String {
    let objs: Vec<String> = entries.iter().map(entry_json).collect();
    format!(
        "{{\"schema\":{},\"version\":{ATTACK_REPORT_VERSION},\"entries\":[{}]}}",
        json_string(ATTACK_REPORT_SCHEMA),
        objs.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evict::TierCost;
    use crate::recover::PhaseCost;
    use primecache_analyze::{CanonicalModel, IndexModel};
    use primecache_core::probe::ProbeCost;

    fn sample_entry() -> AttackEntry {
        AttackEntry {
            scheme: "pMod".to_owned(),
            recovery: Recovery {
                verdict: Verdict::Model(IndexModel::Residue {
                    modulus: 2039,
                    in_bits: 26,
                }),
                cost: ProbeCost {
                    probes: 2103,
                    refs: 6309,
                },
                phases: vec![PhaseCost {
                    phase: "residue",
                    cost: ProbeCost {
                        probes: 2103,
                        refs: 6309,
                    },
                }],
            },
            agrees_static: true,
            static_canonical: Some(CanonicalModel::Residue {
                in_bits: 26,
                modulus: 2039,
            }),
            eviction: EvictionCost {
                victim: 0,
                assoc: 4,
                tiers: vec![TierCost {
                    tier: "naive-stride",
                    success: false,
                    cost: ProbeCost {
                        probes: 19,
                        refs: 114,
                    },
                    set_size: 0,
                    detail: "no ladder stride evicts".to_owned(),
                }],
                first_success: None,
            },
        }
    }

    #[test]
    fn report_carries_schema_version_and_entries() {
        let j = attack_report_json(&[sample_entry()]);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"schema\":\"primecache.attack-report\""));
        assert!(j.contains("\"version\":1"));
        assert!(j.contains("\"scheme\":\"pMod\""));
        assert!(j.contains("\"family\":\"residue\""));
        assert!(j.contains("\"modulus\":2039"));
        assert!(j.contains("\"agrees_static\":true"));
        assert!(j.contains("\"first_success\":null"));
    }

    #[test]
    fn opaque_verdicts_render_reasons_and_null_canonical() {
        let mut e = sample_entry();
        e.recovery.verdict = Verdict::Opaque {
            reasons: vec!["residue: \"quoted\" reason".to_owned()],
        };
        e.static_canonical = None;
        let j = entry_json(&e);
        assert!(j.contains("\"canonical\":null"));
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"static_canonical\":null"));
    }
}
