//! Structure recovery from conflict observations.
//!
//! Strategy: three verified hypotheses, cheapest observable first, each
//! one *rejected by evidence* rather than assumption. Every accepted
//! model survives a sampled verification pass (structured positive pairs
//! the hypothesis predicts collide, plus random pairs whose predicted
//! and observed outcomes must agree), so a wrong family never leaks out
//! as a confident answer — it falls through to the next hypothesis and
//! ultimately to the declared [`Verdict::Opaque`].
//!
//! 1. **Residue** (`a mod m`): ascending scan `d = 1..=n_set_phys` of
//!    `same_set(0, d)`. For a true residue scheme the smallest positive
//!    collider with 0 is exactly the modulus; `m = 1` (every pair
//!    collides) covers the degenerate single-set cache a capacity-1
//!    probe of a fully-associative organization exposes.
//! 2. **Linear** (GF(2)): process basis vectors `e_0..e_{n−1}`,
//!    maintaining class representatives — the carry-free subset sums of
//!    the independent vectors found so far, labeled by `F_2^r` — and
//!    classify each `e_i` against them with same-set probes. Because the
//!    representatives are bit-disjoint sums, a match pins `H(e_i)` up to
//!    the output relabeling a black box can never see; the result is a
//!    matrix with the *same row space* as the hidden map, which is
//!    exactly what [`primecache_analyze::canonicalize`] compares.
//! 3. **Affine** (`(p·T + x) mod 2^k`): the set of the tag-only address
//!    `2^shift·2^k` is `(p mod 2^j)·2^shift`, so each probe of a
//!    tag-only address against two candidate index-only addresses
//!    decides one more bit of `p` — `2k` probes to read the factor out.

use primecache_analyze::{canonicalize, input_mask, Gf2Matrix, IndexModel};
use primecache_core::probe::{ProbeCost, ProbeOracle};

/// Tuning knobs for [`recover`]. Defaults match the CLI and tests.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// Seed for the verification sampler.
    pub seed: u64,
    /// Verification pairs per accepted hypothesis (half structured
    /// positives, half random agreement checks).
    pub verify_pairs: usize,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EED,
            verify_pairs: 64,
        }
    }
}

/// What the attacker concluded.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// A verified exact model (same canonical form as the static one
    /// when the oracle really hides that family).
    Model(IndexModel),
    /// No verified family fits — declared honestly, with the evidence
    /// trail of rejected hypotheses.
    Opaque {
        /// Why each hypothesis was rejected.
        reasons: Vec<String>,
    },
}

impl Verdict {
    /// Family tag for tables and reports (`residue` / `linear` /
    /// `affine` / `opaque`).
    #[must_use]
    pub fn family(&self) -> &'static str {
        match self {
            Verdict::Model(m) => canonicalize(m).family(),
            Verdict::Opaque { .. } => "opaque",
        }
    }

    /// The differential-oracle predicate against the static analyzer's
    /// model (if one exists for the scheme):
    ///
    /// * recovered model vs static model — canonical-form equality;
    /// * Opaque verdict vs static Opaque — agreement (neither side has
    ///   an exact certificate);
    /// * Opaque verdict vs *no* static model (multi-bank skewed caches
    ///   have no single index function) — agreement;
    /// * anything else — disagreement.
    #[must_use]
    pub fn matches_static(&self, statik: Option<&IndexModel>) -> bool {
        match (self, statik) {
            (Verdict::Model(rec), Some(st)) => canonicalize(rec) == canonicalize(st),
            (Verdict::Opaque { .. }, Some(IndexModel::Opaque { .. }) | None) => true,
            (Verdict::Opaque { .. }, Some(_)) | (Verdict::Model(_), None) => false,
        }
    }
}

/// Cost of one recovery phase.
#[derive(Debug, Clone, Copy)]
pub struct PhaseCost {
    /// Phase name (`residue` / `linear` / `affine`).
    pub phase: &'static str,
    /// Probes and refs this phase spent.
    pub cost: ProbeCost,
}

/// The full outcome of a recovery campaign.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// The verdict (verified model or declared Opaque).
    pub verdict: Verdict,
    /// Total probing cost.
    pub cost: ProbeCost,
    /// Per-phase cost breakdown, in the order the phases ran.
    pub phases: Vec<PhaseCost>,
}

/// SplitMix64 — the attack's private sampler (deterministic per seed,
/// independent of the workload generators).
struct Rng64(u64);

impl Rng64 {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Recovers the structure of the probed index function. See the module
/// docs for the hypothesis ladder; the returned [`Recovery`] carries the
/// verdict and the full probe-cost accounting.
pub fn recover(oracle: &mut dyn ProbeOracle, cfg: &RecoveryConfig) -> Recovery {
    let start = oracle.cost();
    let mut rng = Rng64::new(cfg.seed);
    let mut phases = Vec::new();
    let mut reasons = Vec::new();

    let before = oracle.cost();
    let residue = try_residue(oracle, cfg, &mut rng, &mut reasons);
    phases.push(PhaseCost {
        phase: "residue",
        cost: oracle.cost().since(before),
    });
    if let Some(model) = residue {
        return done(Verdict::Model(model), oracle.cost().since(start), phases);
    }

    let before = oracle.cost();
    let linear = try_linear(oracle, cfg, &mut rng, &mut reasons);
    phases.push(PhaseCost {
        phase: "linear",
        cost: oracle.cost().since(before),
    });
    if let Some(model) = linear {
        return done(Verdict::Model(model), oracle.cost().since(start), phases);
    }

    let before = oracle.cost();
    let affine = try_affine(oracle, cfg, &mut rng, &mut reasons);
    phases.push(PhaseCost {
        phase: "affine",
        cost: oracle.cost().since(before),
    });
    if let Some(model) = affine {
        return done(Verdict::Model(model), oracle.cost().since(start), phases);
    }

    done(
        Verdict::Opaque { reasons },
        oracle.cost().since(start),
        phases,
    )
}

fn done(verdict: Verdict, cost: ProbeCost, phases: Vec<PhaseCost>) -> Recovery {
    Recovery {
        verdict,
        cost,
        phases,
    }
}

/// Verifies a candidate model: `positives` structured pairs the model
/// predicts collide must all collide; `verify_pairs` random pairs must
/// agree with the model's prediction in both directions.
fn verify_model(
    oracle: &mut dyn ProbeOracle,
    cfg: &RecoveryConfig,
    rng: &mut Rng64,
    model: &IndexModel,
    positives: &[(u64, u64)],
) -> bool {
    for &(a, b) in positives {
        if a == b || !oracle.same_set(a, b) {
            return false;
        }
    }
    let mask = input_mask(oracle.in_bits());
    for _ in 0..cfg.verify_pairs / 2 {
        let a = rng.next() & mask;
        let mut b = rng.next() & mask;
        if a == b {
            b ^= 1;
        }
        let predicted = model.eval(a) == model.eval(b);
        if oracle.same_set(a, b) != predicted {
            return false;
        }
    }
    true
}

/// Phase 1: residue-class inference. For `a mod m` the smallest positive
/// stride colliding with 0 is the modulus itself, so an ascending scan
/// is complete; the verification pass rejects accidental colliders of
/// non-residue schemes (a linear kernel vector, an opaque coincidence).
fn try_residue(
    oracle: &mut dyn ProbeOracle,
    cfg: &RecoveryConfig,
    rng: &mut Rng64,
    reasons: &mut Vec<String>,
) -> Option<IndexModel> {
    let in_bits = oracle.in_bits();
    let mask = input_mask(in_bits);
    let n_phys = oracle.n_set_phys();
    let Some(m) = (1..=n_phys).find(|&d| oracle.same_set(0, d)) else {
        reasons.push(format!(
            "residue: no stride in 1..={n_phys} collides with block 0"
        ));
        return None;
    };
    let model = IndexModel::Residue {
        modulus: m,
        in_bits,
    };
    // Structured positives: a and a + j·m collide for every a.
    let positives: Vec<(u64, u64)> = (0..cfg.verify_pairs / 2)
        .map(|_| {
            let j = 1 + rng.below(4);
            let a = rng.below(mask - j * m + 1);
            (a, a + j * m)
        })
        .collect();
    if verify_model(oracle, cfg, rng, &model, &positives) {
        Some(model)
    } else {
        reasons.push(format!(
            "residue: stride {m} collides with 0 but the mod-{m} partition \
             failed sampled verification"
        ));
        None
    }
}

/// Phase 2: GF(2) class labeling. Returns a matrix with the hidden map's
/// row space (the canonical invariant), or `None` when the class count
/// overflows the physical geometry or verification refutes linearity.
fn try_linear(
    oracle: &mut dyn ProbeOracle,
    cfg: &RecoveryConfig,
    rng: &mut Rng64,
    reasons: &mut Vec<String>,
) -> Option<IndexModel> {
    let in_bits = oracle.in_bits();
    let mask = input_mask(in_bits);
    // A single hash over n_phys sets uses at most ceil(log2 n_phys)
    // output bits; one spare bit of slack keeps the abort conservative.
    let max_rank = oracle.n_set_phys().next_power_of_two().trailing_zeros() + 1;
    // Class representatives: every carry-free subset sum of the fresh
    // basis vectors found so far, with its F_2^r label. Bounded by
    // 2^max_rank entries, after which the hypothesis dies anyway.
    let mut reps: Vec<(u64, u64)> = vec![(0, 0)];
    let mut labels = vec![0u64; in_bits as usize];
    let mut rank: u32 = 0;
    for i in 0..in_bits {
        let e = 1u64 << i;
        let mut matched = false;
        for &(addr, lab) in &reps {
            if oracle.same_set(e, addr) {
                labels[i as usize] = lab;
                matched = true;
                break;
            }
        }
        if !matched {
            rank += 1;
            if rank > max_rank {
                reasons.push(format!(
                    "linear: more than 2^{max_rank} distinct basis classes — \
                     not a GF(2) map into this geometry"
                ));
                return None;
            }
            let bit = 1u64 << (rank - 1);
            labels[i as usize] = bit;
            for ri in 0..reps.len() {
                let (addr, lab) = reps[ri];
                reps.push((addr | e, lab ^ bit));
            }
        }
    }
    // Reassemble the matrix: row j collects the basis bits whose label
    // has bit j.
    let rows: Vec<u64> = (0..rank)
        .map(|j| {
            (0..in_bits)
                .filter(|&i| (labels[i as usize] >> j) & 1 == 1)
                .fold(0u64, |acc, i| acc | (1 << i))
        })
        .collect();
    let matrix = Gf2Matrix::new(rows, in_bits);
    // Structured positives: random base XOR a random nonzero kernel
    // combination must collide — this is the direction that catches
    // carry-based near-linear impostors (pDisp agrees with a linear fit
    // on every basis vector, and only carries betray it).
    let kernel = matrix.kernel_basis();
    let mut positives = Vec::new();
    if !kernel.is_empty() {
        for _ in 0..cfg.verify_pairs / 2 {
            let mut d = 0u64;
            for _ in 0..3 {
                d ^= kernel[rng.below(kernel.len() as u64) as usize];
            }
            if d == 0 {
                d = kernel[0];
            }
            let a = rng.next() & mask;
            positives.push((a, a ^ d));
        }
    }
    let model = IndexModel::Linear(matrix);
    if verify_model(oracle, cfg, rng, &model, &positives) {
        Some(model)
    } else {
        reasons.push(
            "linear: basis classes fitted a matrix but kernel/random pairs \
             failed sampled verification"
                .to_owned(),
        );
        None
    }
}

/// Phase 3: affine factor probing. Requires a power-of-two physical
/// geometry wide enough to place a pure-tag probe address in the window.
fn try_affine(
    oracle: &mut dyn ProbeOracle,
    cfg: &RecoveryConfig,
    rng: &mut Rng64,
    reasons: &mut Vec<String>,
) -> Option<IndexModel> {
    let in_bits = oracle.in_bits();
    let n_phys = oracle.n_set_phys();
    if !n_phys.is_power_of_two() || n_phys < 2 {
        reasons.push(format!(
            "affine: physical set count {n_phys} is not a power of two"
        ));
        return None;
    }
    let k = n_phys.trailing_zeros();
    if in_bits < 2 * k {
        reasons.push(format!(
            "affine: window of {in_bits} bits cannot hold a 2^{} tag probe",
            2 * k - 1
        ));
        return None;
    }
    let mask = input_mask(k);
    // Bit-by-bit factor read-out: the tag-only address 2^(k+shift) lands
    // in set (p·2^shift) mod 2^k = (p mod 2^j)·2^shift with shift=k−j,
    // and index-only addresses land in their own value — so two same-set
    // probes decide bit j−1 of p.
    let mut q = 0u64; // p mod 2^(j-1)
    for j in 1..=k {
        let shift = k - j;
        let tag_probe = 1u64 << (k + shift);
        let lo = (q << shift) & mask;
        let hi = ((q | (1 << (j - 1))) << shift) & mask;
        if oracle.same_set(tag_probe, lo) {
            // bit j-1 of p is 0: q unchanged.
        } else if oracle.same_set(tag_probe, hi) {
            q |= 1 << (j - 1);
        } else {
            reasons.push(format!(
                "affine: tag probe 2^{} matched neither factor candidate at \
                 bit {}",
                k + shift,
                j - 1
            ));
            return None;
        }
    }
    let model = IndexModel::Affine {
        factor: q,
        index_bits: k,
        in_bits,
    };
    // Structured positives: pick a random address, then construct a
    // partner in its predicted set from a fresh random tag.
    let window = input_mask(in_bits);
    let mut positives = Vec::new();
    for _ in 0..cfg.verify_pairs / 2 {
        let a = rng.next() & window;
        let target = model.eval(a);
        let tb = rng.next() & (window >> k);
        let xb = target.wrapping_sub(q.wrapping_mul(tb)) & mask;
        let b = (tb << k) | xb;
        if b != a {
            positives.push((a, b));
        }
    }
    if verify_model(oracle, cfg, rng, &model, &positives) {
        Some(model)
    } else {
        reasons.push(format!(
            "affine: recovered factor {q} failed sampled verification"
        ));
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primecache_analyze::model_of;
    use primecache_core::index::{Geometry, HashKind};
    use primecache_core::probe::ModelOracle;

    fn recover_kind(kind: HashKind, n_set: u64, in_bits: u32) -> (Recovery, IndexModel) {
        let geom = Geometry::new(n_set);
        let idx = kind.build(geom);
        let mut oracle = ModelOracle::from_indexer(idx, 1, in_bits);
        let rec = recover(&mut oracle, &RecoveryConfig::default());
        (rec, model_of(kind, geom, in_bits))
    }

    #[test]
    fn recovers_every_builtin_hash_kind() {
        for kind in HashKind::ALL {
            let (rec, statik) = recover_kind(kind, 64, 16);
            assert!(
                rec.verdict.matches_static(Some(&statik)),
                "{kind}: {:?} != static",
                rec.verdict
            );
            assert!(rec.cost.probes > 0);
        }
    }

    #[test]
    fn recovers_the_paper_geometry() {
        // The real 2048-set L2 shapes, small enough to run in debug.
        for kind in [HashKind::PrimeModulo, HashKind::PrimeDisplacement] {
            let (rec, statik) = recover_kind(kind, 2048, 26);
            assert!(
                rec.verdict.matches_static(Some(&statik)),
                "{kind}: {:?}",
                rec.verdict
            );
        }
    }

    #[test]
    fn trivial_single_set_cache_reads_as_residue_one() {
        let mut oracle = ModelOracle::new(|_| 0, 1, 1, 16);
        let rec = recover(&mut oracle, &RecoveryConfig::default());
        let Verdict::Model(m) = &rec.verdict else {
            panic!("expected a model, got {:?}", rec.verdict);
        };
        assert_eq!(m.n_set(), 1);
    }

    #[test]
    fn non_algebraic_function_is_declared_opaque() {
        // Multiply-shift hash over the high bits: fits no family.
        let mut oracle = ModelOracle::new(
            |a| (a ^ (a >> 7)).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58,
            64,
            1,
            16,
        );
        let rec = recover(&mut oracle, &RecoveryConfig::default());
        let Verdict::Opaque { reasons } = &rec.verdict else {
            panic!("expected opaque, got {:?}", rec.verdict);
        };
        assert!(reasons.len() >= 2, "{reasons:?}");
        assert!(!rec
            .verdict
            .matches_static(Some(&model_of(HashKind::Xor, Geometry::new(64), 16))));
    }

    #[test]
    fn phase_costs_sum_to_total() {
        let (rec, _) = recover_kind(HashKind::Xor, 64, 16);
        let sum = rec
            .phases
            .iter()
            .fold(ProbeCost::default(), |acc, p| acc + p.cost);
        assert_eq!(sum, rec.cost);
    }
}
