//! Benchmark harness: shared helpers for the per-table/per-figure
//! binaries and the [`microbench`] micro-benches.
//!
//! Every table and figure of the paper has a binary that regenerates it:
//!
//! | target | reproduces |
//! |---|---|
//! | `table1` | Table 1 (prime-modulo fragmentation) |
//! | `table2` | Table 2 (qualitative hash-function comparison, checked) |
//! | `table3` | Table 3 (simulated machine parameters) |
//! | `table4` | Table 4 (speedup summary + pathological counts) |
//! | `fig5` / `fig6` | balance / concentration vs stride |
//! | `fig7` / `fig8` | single-hash normalized execution times |
//! | `fig9` / `fig10` | multi-hash normalized execution times |
//! | `fig11` / `fig12` | normalized L2 miss counts |
//! | `fig13` | per-set miss distribution of `tree` |
//! | `theorem1` | iterative-linear iteration bounds |
//! | `reproduce` | everything above in one run |
//! | `figures_svg` | SVG renderings of Figs. 5-13 into `figures/` |
//! | `export_csv` | raw CSV data per figure into `figures/csv/` |
//! | `misstax` | three-C miss taxonomy (extension) |
//! | `ablation_*` | pdisp factor, modulus, replacement, prefetch, paging, victim, XOR variants, DRAM mapping, multiprogramming, L1 hashing, skew geometry, cache size |
//!
//! Run any of them with `cargo run --release -p primecache-bench --bin <target>`.
//! Figure binaries accept `--refs N` to set the trace length (default
//! 1,000,000 memory references).

pub mod microbench;

use primecache_sim::suite::Sweep;
use primecache_sim::{report, Scheme};
use primecache_workloads::{non_uniform_names, uniform_names};

/// Default trace length (memory references) for figure binaries.
pub const DEFAULT_REFS: u64 = 1_000_000;

/// Parses `--refs N` from the command line, defaulting to
/// [`DEFAULT_REFS`].
///
/// # Panics
///
/// Panics with a usage message when `--refs` is present without a valid
/// number.
#[must_use]
pub fn refs_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--refs") {
        None => DEFAULT_REFS,
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("usage: {} [--refs N]", args[0])),
    }
}

/// Prints a normalized-execution-time table (Figs. 7–10) for one group of
/// applications.
pub fn print_normalized_times(sweep: &Sweep, schemes: &[Scheme], names: &[&str], title: &str) {
    let mut header = vec!["app"];
    header.extend(schemes.iter().map(|s| s.label()));
    let rows: Vec<Vec<String>> = names
        .iter()
        .map(|&name| {
            let mut row = vec![name.to_owned()];
            for &s in schemes {
                let v = sweep.normalized_time(name, s).unwrap_or(f64::NAN);
                row.push(report::f3(v));
            }
            row
        })
        .collect();
    println!("{title}");
    println!("(execution time normalized to Base; lower is better)\n");
    print!("{}", report::render_table(&header, &rows));
    // Geometric-mean speedup row, as the paper summarizes.
    let mut summary = vec!["avg speedup".to_owned()];
    for &s in schemes {
        let speedups: Vec<f64> = names.iter().filter_map(|n| sweep.speedup(n, s)).collect();
        let avg = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
        summary.push(report::f2(avg));
    }
    let mut header2 = vec![""];
    header2.extend(schemes.iter().map(|s| s.label()));
    print!("{}", report::render_table(&header2, &[summary]));
    println!();
}

/// Prints the stacked-bar composition of Figs. 7–10: each cell shows
/// busy/other/memory as fractions of the *Base* execution time, so the
/// three segments of the paper's bars can be read directly.
pub fn print_breakdown_segments(sweep: &Sweep, schemes: &[Scheme], names: &[&str], title: &str) {
    let mut header = vec!["app"];
    header.extend(schemes.iter().map(|s| s.label()));
    let rows: Vec<Vec<String>> = names
        .iter()
        .map(|&name| {
            let mut row = vec![name.to_owned()];
            let base_total = sweep
                .get(name, Scheme::Base)
                .map(|c| c.result.breakdown.total())
                .unwrap_or(1)
                .max(1) as f64;
            for &s in schemes {
                match sweep.get(name, s) {
                    Some(cell) => {
                        let b = cell.result.breakdown;
                        row.push(format!(
                            "{:.2}+{:.2}+{:.2}",
                            b.busy as f64 / base_total,
                            b.other_stall as f64 / base_total,
                            b.mem_stall as f64 / base_total,
                        ));
                    }
                    None => row.push("-".to_owned()),
                }
            }
            row
        })
        .collect();
    println!("{title}");
    println!(
        "(busy+other+memory, each normalized to the Base total)
"
    );
    print!("{}", report::render_table(&header, &rows));
    println!();
}

/// Prints a normalized-miss-count table (Figs. 11/12).
pub fn print_normalized_misses(sweep: &Sweep, schemes: &[Scheme], names: &[&str], title: &str) {
    let mut header = vec!["app"];
    header.extend(schemes.iter().map(|s| s.label()));
    let rows: Vec<Vec<String>> = names
        .iter()
        .map(|&name| {
            let mut row = vec![name.to_owned()];
            for &s in schemes {
                let v = sweep.normalized_misses(name, s).unwrap_or(f64::NAN);
                row.push(report::f3(v));
            }
            row
        })
        .collect();
    println!("{title}");
    println!("(L2 misses normalized to Base; lower is better)\n");
    print!("{}", report::render_table(&header, &rows));
    println!();
}

/// The two application groups of the figures.
#[must_use]
pub fn groups() -> (Vec<&'static str>, Vec<&'static str>) {
    (non_uniform_names(), uniform_names())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_partition_the_suite() {
        let (nu, u) = groups();
        assert_eq!(nu.len() + u.len(), 23);
        assert!(nu.contains(&"tree"));
        assert!(u.contains(&"swim"));
    }

    #[test]
    fn refs_default_applies_without_a_flag() {
        // The test harness's argv has no `--refs`, so the default rules.
        assert_eq!(refs_from_args(), DEFAULT_REFS);
    }
}
