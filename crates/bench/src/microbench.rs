//! Minimal micro-benchmark harness.
//!
//! The registry mirror is unreachable from some build environments, so the
//! bench targets cannot depend on criterion. This module supplies the small
//! subset they need: warmup, repeated timed samples, and a median-of-samples
//! report in ns/iter. It is intentionally simple — for publication-grade
//! numbers, swap in criterion locally.

use std::time::Instant;

pub use std::hint::black_box;

/// One benchmark group, printed as an indented block.
pub struct Group {
    name: String,
    /// Elements processed per iteration, for throughput reporting.
    pub throughput: u64,
    /// Timed samples taken per benchmark.
    pub samples: usize,
}

impl Group {
    /// Starts a named group.
    #[must_use]
    pub fn new(name: &str) -> Self {
        println!("{name}");
        Self {
            name: name.to_owned(),
            throughput: 0,
            samples: 15,
        }
    }

    /// Times `f`, printing median ns/iter (and elements/s when a
    /// throughput was set).
    pub fn bench<R>(&self, label: &str, mut f: impl FnMut() -> R) {
        // Warm up and pick an iteration count targeting ~20ms per sample.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed.as_millis() >= 20 || iters >= 1 << 24 {
                break;
            }
            iters = (iters * 4).min(1 << 24);
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let median = per_iter[per_iter.len() / 2];
        if self.throughput > 0 {
            let eps = self.throughput as f64 / (median * 1e-9);
            println!("  {label:<40} {median:>12.1} ns/iter  {eps:>14.0} elem/s");
        } else {
            println!("  {label:<40} {median:>12.1} ns/iter");
        }
    }

    /// Ends the group.
    pub fn finish(self) {
        println!();
        let _ = self.name;
    }
}
