//! Ablation: the prime-displacement factor `p`.
//!
//! The paper's footnote 2: `p` need not be prime — any member of the odd
//! multiplicative group mod 2^k works, and "it is also not the case that
//! prime numbers are necessarily better choices". This binary checks that
//! claim: balance/concentration quality over strided patterns, plus
//! end-to-end L2 misses on the `tree` workload, for prime and non-prime
//! odd factors.

use primecache_cache::{Cache, CacheConfig, CacheSim};
use primecache_core::index::{Geometry, PrimeDisplacement};
use primecache_core::metrics::{balance, concentration, strided_addresses};
use primecache_primes::{is_prime, mod_inv};
use primecache_sim::report::render_table;
use primecache_workloads::by_name;

const M: usize = 8192;

/// Strided-pattern quality: (# strides of 512 with non-ideal balance,
/// mean concentration).
fn quality(factor: u64) -> (usize, f64) {
    let geom = Geometry::new(2048);
    let pd = PrimeDisplacement::new(geom, factor);
    let mut bad_balance = 0usize;
    let mut mean_conc = 0.0f64;
    let strides = 512u64;
    for s in 1..=strides {
        let addrs = strided_addresses(s, M);
        if balance(&pd, addrs.iter().copied()) > 1.05 {
            bad_balance += 1;
        }
        mean_conc += concentration(&pd, addrs.iter().copied());
    }
    (bad_balance, mean_conc / strides as f64)
}

/// End-to-end: L2 misses of the `tree` workload under a pDisp L2 with the
/// given factor.
fn tree_misses(factor: u64) -> u64 {
    let cfg = CacheConfig::new(512 * 1024, 4, 64);
    let mut l2 = Cache::with_indexer(
        cfg,
        Box::new(PrimeDisplacement::new(Geometry::new(2048), factor)),
    );
    for ev in by_name("tree").expect("registry has tree").trace(150_000) {
        if let Some(addr) = ev.addr() {
            l2.access(addr, matches!(ev, primecache_trace::Event::Store { .. }));
        }
    }
    l2.stats().misses
}

fn main() {
    println!("Ablation: prime-displacement factor p (2048-set L2)\n");
    let mut rows = Vec::new();
    for factor in [3u64, 9, 17, 19, 21, 33, 37, 63, 127, 255] {
        let (bad, conc) = quality(factor);
        rows.push(vec![
            factor.to_string(),
            if is_prime(factor) { "prime" } else { "odd" }.to_owned(),
            format!("{bad}/512"),
            format!("{conc:.0}"),
            tree_misses(factor).to_string(),
            mod_inv(factor, 2048).map_or_else(|| "-".into(), |i| i.to_string()),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "p",
                "kind",
                "non-ideal balance strides",
                "mean concentration",
                "tree L2 misses",
                "inverse mod 2048",
            ],
            &rows
        )
    );
    println!("\nEvery odd factor is invertible mod 2^k (a multiplicative-group member),");
    println!("so tag information is never lost; primality itself buys nothing — the");
    println!("paper's footnote 2. The paper's p = 9 sits among the best choices.");
}
