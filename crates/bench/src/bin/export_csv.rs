//! Exports every figure's raw data as CSV into `figures/csv/`.
//!
//! `cargo run --release -p primecache-bench --bin export_csv [-- --refs N]`

use std::fs;
use std::path::Path;

use primecache_bench::{groups, refs_from_args};
use primecache_core::index::HashKind;
use primecache_sim::experiments::{
    exec_time_sweep, fig13_miss_distribution, fig5_balance, fig6_concentration,
    miss_reduction_sweep,
};
use primecache_sim::export::{distribution_csv, misses_csv, stride_csv, times_csv};
use primecache_sim::Scheme;

fn write(dir: &Path, name: &str, data: String) {
    let path = dir.join(name);
    fs::write(&path, data).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

fn main() {
    let refs = refs_from_args().min(500_000);
    let dir = Path::new("figures/csv");
    fs::create_dir_all(dir).expect("cannot create figures/csv/");

    for kind in HashKind::ALL {
        write(
            dir,
            &format!("fig5_{}.csv", kind.label()),
            stride_csv(&fig5_balance(kind, 2047)),
        );
        write(
            dir,
            &format!("fig6_{}.csv", kind.label()),
            stride_csv(&fig6_concentration(kind, 2047)),
        );
    }

    let (non_uniform, uniform) = groups();
    let sweep = exec_time_sweep(
        &[
            Scheme::Base,
            Scheme::EightWay,
            Scheme::Xor,
            Scheme::PrimeModulo,
            Scheme::PrimeDisplacement,
            Scheme::Skewed,
            Scheme::SkewedPrimeDisplacement,
        ],
        refs,
    );
    write(
        dir,
        "fig7.csv",
        times_csv(&sweep, &Scheme::SINGLE_HASH, &non_uniform),
    );
    write(
        dir,
        "fig8.csv",
        times_csv(&sweep, &Scheme::SINGLE_HASH, &uniform),
    );
    write(
        dir,
        "fig9.csv",
        times_csv(&sweep, &Scheme::MULTI_HASH, &non_uniform),
    );
    write(
        dir,
        "fig10.csv",
        times_csv(&sweep, &Scheme::MULTI_HASH, &uniform),
    );

    let miss_sweep = miss_reduction_sweep(refs);
    write(
        dir,
        "fig11.csv",
        misses_csv(&miss_sweep, &Scheme::MISS_REDUCTION, &non_uniform),
    );
    write(
        dir,
        "fig12.csv",
        misses_csv(&miss_sweep, &Scheme::MISS_REDUCTION, &uniform),
    );

    write(
        dir,
        "fig13_base.csv",
        distribution_csv(&fig13_miss_distribution(Scheme::Base, refs)),
    );
    write(
        dir,
        "fig13_pmod.csv",
        distribution_csv(&fig13_miss_distribution(Scheme::PrimeModulo, refs)),
    );
    println!("done.");
}
