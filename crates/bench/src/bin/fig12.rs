//! Regenerates Fig. 12: normalized L2 miss counts on the uniform
//! applications — pMod/pDisp hold the line while skw+pDisp inflates some.

use primecache_bench::{groups, print_normalized_misses, refs_from_args};
use primecache_sim::experiments::miss_reduction_sweep;
use primecache_sim::Scheme;

fn main() {
    let refs = refs_from_args();
    let sweep = miss_reduction_sweep(refs);
    let (_, uniform) = groups();
    print_normalized_misses(
        &sweep,
        &Scheme::MISS_REDUCTION,
        &uniform,
        "Fig. 12: normalized L2 misses, uniform applications",
    );
    println!("paper: pMod never increases misses; skw+pDisp increases them by up to 20%");
    println!("       in six apps (bzip2, mgrid, parser, sparse, swim, tomcatv)");
}
