//! Regenerates Fig. 10: normalized execution times of the multi-hash
//! (skewed) schemes on the uniform applications — where the skewed
//! caches' pathological slowdowns appear.

use primecache_bench::{groups, print_normalized_times, refs_from_args};
use primecache_sim::experiments::exec_time_sweep;
use primecache_sim::Scheme;

fn main() {
    let refs = refs_from_args();
    let sweep = exec_time_sweep(&Scheme::MULTI_HASH, refs);
    let (_, uniform) = groups();
    print_normalized_times(
        &sweep,
        &Scheme::MULTI_HASH,
        &uniform,
        "Fig. 10: multiple hashing functions, uniform applications",
    );
    println!("paper: SKW slows six apps by up to 9% (bzip2, charmm, is, parser, sparse, irr*),");
    println!("       skw+pDisp slows three by up to 7% (bzip2, mgrid, sparse); pMod is safe");
    println!("       (*irr appears in the paper's Fig. 10 slowdown list)");
}
