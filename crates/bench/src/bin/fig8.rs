//! Regenerates Fig. 8: normalized execution times of the single-hash
//! schemes on the applications with uniform cache accesses.

use primecache_bench::{groups, print_normalized_times, refs_from_args};
use primecache_sim::experiments::exec_time_sweep;
use primecache_sim::Scheme;

fn main() {
    let refs = refs_from_args();
    let sweep = exec_time_sweep(&Scheme::SINGLE_HASH, refs);
    let (_, uniform) = groups();
    print_normalized_times(
        &sweep,
        &Scheme::SINGLE_HASH,
        &uniform,
        "Fig. 8: single hashing functions, uniform applications",
    );
    println!("paper: near-1.0 across the board; worst slowdowns ~2% (mst under 8-way,");
    println!("       sparse under XOR/pMod)");
}
