//! Extension study: skewed-cache geometry — the paper's 4 direct-mapped
//! banks vs Seznec's original 2 banks x 2 ways \[18\], at equal capacity.

use primecache_bench::refs_from_args;
use primecache_cache::{CacheSim, SkewHashKind, SkewedCache, SkewedConfig};
use primecache_sim::report::render_table;
use primecache_workloads::all;

fn misses(workload: &primecache_workloads::Workload, banks: u32, ways: u32, refs: u64) -> u64 {
    let cfg = SkewedConfig::new(512 * 1024, banks, 64, SkewHashKind::PrimeDisplacement)
        .with_ways_per_bank(ways);
    let mut c = SkewedCache::new(cfg);
    for ev in workload.trace(refs) {
        if let Some(addr) = ev.addr() {
            c.access(addr, matches!(ev, primecache_trace::Event::Store { .. }));
        }
    }
    c.stats().misses
}

fn main() {
    let refs = refs_from_args().min(300_000);
    println!("Skewed geometry ablation (512 KB, prime-displacement banks), {refs} refs\n");
    let mut rows = Vec::new();
    for w in all() {
        let four_dm = misses(w, 4, 1, refs);
        let two_2w = misses(w, 2, 2, refs);
        let eight_dm = misses(w, 8, 1, refs);
        rows.push(vec![
            w.name.to_owned(),
            four_dm.to_string(),
            format!("{:.3}", two_2w as f64 / four_dm.max(1) as f64),
            format!("{:.3}", eight_dm as f64 / four_dm.max(1) as f64),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "app",
                "4x1 misses",
                "2 banks x 2 ways (ratio)",
                "8x1 (ratio)"
            ],
            &rows
        )
    );
    println!("\nratios near 1: the paper's choice of four direct-mapped banks is not");
    println!("load-bearing — the skewing functions, not the intra-bank associativity,");
    println!("do the conflict absorption.");
}
