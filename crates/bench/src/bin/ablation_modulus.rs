//! Ablation: non-prime moduli.
//!
//! §3.1 aside: "It is possible to use n_set equal to n_set_phys - 1 but
//! not a prime number. Often, if n_set_phys - 1 is not a prime number, it
//! is a product of two prime numbers. Thus, it is at least a good choice
//! for most stride access patterns." This binary evaluates exactly that:
//! balance quality of moduli 2048 (Base), 2047 = 23*89, 2045, 2043, and
//! the prime 2039 over the stride sweep, plus end-to-end misses on bt.

use primecache_cache::{Cache, CacheConfig, CacheSim};
use primecache_core::index::{Geometry, PrimeModulo};
use primecache_core::metrics::{balance, strided_addresses};
use primecache_primes::{factorize, is_prime};
use primecache_sim::report::render_table;
use primecache_workloads::by_name;

fn bad_strides(modulus: u64) -> usize {
    let geom = Geometry::new(2048);
    let idx = PrimeModulo::with_modulus(geom, modulus);
    (1..=1024u64)
        .filter(|&s| {
            let addrs = strided_addresses(s, 8192);
            balance(&idx, addrs.iter().copied()) > 1.05
        })
        .count()
}

fn bt_misses(modulus: u64) -> u64 {
    let cfg = CacheConfig::new(512 * 1024, 4, 64);
    let mut l2 = Cache::with_indexer(
        cfg,
        Box::new(PrimeModulo::with_modulus(Geometry::new(2048), modulus)),
    );
    for ev in by_name("bt").expect("registry has bt").trace(150_000) {
        if let Some(addr) = ev.addr() {
            l2.access(addr, matches!(ev, primecache_trace::Event::Store { .. }));
        }
    }
    l2.stats().misses
}

fn factorization(n: u64) -> String {
    factorize(n)
        .into_iter()
        .flat_map(|(p, e)| std::iter::repeat_n(p.to_string(), e as usize))
        .collect::<Vec<_>>()
        .join("*")
}

fn main() {
    println!("Ablation: modulus choice for a 2048-physical-set L2\n");
    let mut rows = Vec::new();
    for modulus in [2048u64, 2047, 2046, 2045, 2043, 2039] {
        rows.push(vec![
            modulus.to_string(),
            if is_prime(modulus) {
                "prime".to_owned()
            } else {
                factorization(modulus)
            },
            format!("{}/1024", bad_strides(modulus)),
            bt_misses(modulus).to_string(),
            format!("{:.2}%", (2048 - modulus) as f64 / 20.48),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "modulus",
                "factors",
                "non-ideal balance strides",
                "bt L2 misses",
                "fragmentation"
            ],
            &rows
        )
    );
    println!("\n2047 = 23*89 already fixes most strides (the paper's aside); the prime");
    println!("2039 fixes all but its own multiples at slightly higher fragmentation.");
}
