//! Regenerates the paper's Table 4: speedup summary (min/avg/max per
//! uniform and non-uniform group) and pathological-case counts.

use primecache_bench::refs_from_args;
use primecache_sim::report::{f2, render_table};
use primecache_sim::suite::{run_sweep, table4};
use primecache_sim::Scheme;

fn main() {
    let refs = refs_from_args();
    let schemes = [
        Scheme::Xor,
        Scheme::PrimeModulo,
        Scheme::PrimeDisplacement,
        Scheme::Skewed,
        Scheme::SkewedPrimeDisplacement,
    ];
    let mut to_run = vec![Scheme::Base];
    to_run.extend(schemes);
    eprintln!(
        "running {} workloads x {} schemes at {refs} refs ...",
        23,
        to_run.len()
    );
    let sweep = run_sweep(&to_run, refs);
    let rows = table4(&sweep, &schemes);
    println!("Table 4: Summary of the performance improvement\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.label().to_owned(),
                format!(
                    "{},{},{}",
                    f2(r.uniform.0),
                    f2(r.uniform.1),
                    f2(r.uniform.2)
                ),
                format!(
                    "{},{},{}",
                    f2(r.non_uniform.0),
                    f2(r.non_uniform.1),
                    f2(r.non_uniform.2)
                ),
                r.pathological.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "Cache Hashing",
                "Uniform Apps (min,avg,max)",
                "Nonuniform Apps (min,avg,max)",
                "Patho. Cases",
            ],
            &table_rows
        )
    );
    println!("\npaper: XOR 1.00,1.21,2.09 | pMod 1.00,1.27,2.34 | pDisp 1.00,1.27,2.32");
    println!("       SKW 0.99,1.31,2.55 | skw+pDisp 1.00,1.35,2.63 (non-uniform apps)");
}
