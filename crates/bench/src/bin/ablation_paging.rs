//! Extension study: page-allocation policies vs cache hashing.
//!
//! The L2 is physically indexed, so the OS page allocator randomizes the
//! index bits above the page offset. A natural question for the paper's
//! technique: does a fragmented (random-mapping) system already break the
//! power-of-two conflict patterns, making prime indexing redundant? This
//! study runs the non-uniform applications under identity, sequential,
//! random, and colored page mappings, with Base and pMod L2s.

use primecache_bench::refs_from_args;
use primecache_cache::paging::PagePolicy;
use primecache_sim::experiments::run_workload_paged;
use primecache_sim::report::render_table;
use primecache_sim::Scheme;
use primecache_workloads::{all, by_name};

const PAGE: u64 = 4096;

fn main() {
    let refs = refs_from_args().min(400_000);
    let policies = [
        ("identity", PagePolicy::Identity),
        ("sequential", PagePolicy::Sequential),
        ("random", PagePolicy::Random),
        ("colored/32", PagePolicy::Colored { colors: 32 }),
    ];
    println!("Paging ablation: pMod speedup over Base per page policy, {refs} refs\n");
    let apps: Vec<&str> = all()
        .iter()
        .filter(|w| w.expected_non_uniform)
        .map(|w| w.name)
        .collect();
    let mut header = vec!["app"];
    header.extend(policies.iter().map(|(n, _)| *n));
    let mut rows = Vec::new();
    for app in &apps {
        let w = by_name(app).expect("known workload");
        let mut row = vec![(*app).to_owned()];
        for (_, policy) in policies {
            let base = run_workload_paged(w, Scheme::Base, refs, policy, PAGE);
            let pmod = run_workload_paged(w, Scheme::PrimeModulo, refs, policy, PAGE);
            row.push(format!(
                "{:.2}",
                base.breakdown.total() as f64 / pmod.breakdown.total() as f64
            ));
        }
        rows.push(row);
    }
    print!("{}", render_table(&header, &rows));
    println!("\nRandom mappings scramble only the index bits above the page offset");
    println!("(6 of 11 for a 4 KB page); conflicts between blocks in the same page");
    println!("region — and every intra-page pattern — survive, so prime indexing");
    println!("keeps a substantial edge even on a fragmented system.");
}
