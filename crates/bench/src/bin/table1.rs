//! Regenerates the paper's Table 1: prime modulo set fragmentation.

use primecache_primes::frag::table1;
use primecache_sim::report::render_table;

fn main() {
    println!("Table 1: Prime modulo set fragmentation\n");
    let rows: Vec<Vec<String>> = table1()
        .iter()
        .map(|r| {
            vec![
                r.n_set_phys.to_string(),
                r.n_set.to_string(),
                format!("{:.2}%", r.fragmentation_pct()),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["n_set_phys", "n_set", "Fragmentation (%)"], &rows)
    );
}
