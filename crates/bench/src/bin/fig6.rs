//! Regenerates Fig. 6: concentration vs stride (1..2047) for the four
//! hash functions (ideal = 0).

use primecache_core::index::HashKind;
use primecache_sim::experiments::fig6_concentration;

const HI: f64 = 2048.0;

fn main() {
    println!("Fig. 6: concentration vs block stride (2048-set geometry, ideal = 0)\n");
    let max_stride = 2047;
    let sweeps: Vec<(HashKind, Vec<_>)> = HashKind::ALL
        .into_iter()
        .map(|k| (k, fig6_concentration(k, max_stride)))
        .collect();
    println!(
        "stride  {}",
        sweeps
            .iter()
            .map(|(k, _)| format!("{:>8}", k.label()))
            .collect::<String>()
    );
    for i in (0..max_stride as usize).step_by(13) {
        let stride = sweeps[0].1[i].stride;
        let row: String = sweeps
            .iter()
            .map(|(_, pts)| format!("{:>8.0}", pts[i].value))
            .collect();
        println!("{stride:>6}  {row}");
    }
    println!("\nSketch (stride 1..{max_stride}, downsampled):");
    for (k, pts) in &sweeps {
        // An odd sampling step mixes even and odd strides (a step of 16
        // would show only odd strides, hiding the Base pathology).
        let vals: Vec<f64> = pts.iter().step_by(13).map(|p| p.value).collect();
        println!(
            "  {:>6} |{}|",
            k.label(),
            primecache_sim::report::sparkline(&vals, 0.0, HI)
        );
    }
    println!("\nSummary over all {max_stride} strides:");
    for (k, pts) in &sweeps {
        let bad = pts.iter().filter(|p| p.value > 1.0).count();
        let mean = pts.iter().map(|p| p.value).sum::<f64>() / pts.len() as f64;
        println!(
            "  {:>6}: {} strides with non-ideal concentration, mean {:.0}",
            k.label(),
            bad,
            mean
        );
    }
}
