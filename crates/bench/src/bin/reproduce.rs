//! Runs the complete reproduction: every table and figure, one after the
//! other, sharing the expensive sweeps.
//!
//! `cargo run --release -p primecache-bench --bin reproduce [-- --refs N]`

use primecache_bench::{groups, print_normalized_misses, print_normalized_times, refs_from_args};
use primecache_core::index::HashKind;
use primecache_primes::frag::table1;
use primecache_sim::experiments::{
    exec_time_sweep, fig13_miss_distribution, fig5_balance, fig6_concentration,
    miss_reduction_sweep, sets_carrying_share,
};
use primecache_sim::report::{f2, render_table};
use primecache_sim::suite::table4;
use primecache_sim::Scheme;

fn main() {
    let refs = refs_from_args();
    let (non_uniform, uniform) = groups();

    println!("==================================================================");
    println!(" primecache reproduction: every table and figure of the paper");
    println!(" trace length: {refs} memory references per (workload, scheme)");
    println!("==================================================================\n");

    // ---- Table 1 -------------------------------------------------------
    println!("--- Table 1: fragmentation ---");
    for r in table1() {
        println!(
            "  {:>6} physical sets -> prime {:>6} ({:.2}% wasted)",
            r.n_set_phys,
            r.n_set,
            r.fragmentation_pct()
        );
    }
    println!();

    // ---- Figs. 5/6 ------------------------------------------------------
    println!("--- Figs. 5/6: balance & concentration over strides 1..2047 ---");
    for kind in HashKind::ALL {
        let bal = fig5_balance(kind, 2047);
        let conc = fig6_concentration(kind, 2047);
        let bad_bal = bal.iter().filter(|p| p.value > 1.05).count();
        let bad_conc = conc.iter().filter(|p| p.value > 1.0).count();
        println!(
            "  {:>6}: non-ideal balance on {bad_bal} strides, non-ideal concentration on {bad_conc}",
            kind.label()
        );
    }
    println!();

    // ---- Figs. 7-10 -----------------------------------------------------
    eprintln!("[1/2] execution-time sweep ({} schemes x 23 apps) ...", 7);
    let all_schemes = [
        Scheme::Base,
        Scheme::EightWay,
        Scheme::Xor,
        Scheme::PrimeModulo,
        Scheme::PrimeDisplacement,
        Scheme::Skewed,
        Scheme::SkewedPrimeDisplacement,
    ];
    let sweep = exec_time_sweep(&all_schemes, refs);
    print_normalized_times(&sweep, &Scheme::SINGLE_HASH, &non_uniform, "--- Fig. 7 ---");
    print_normalized_times(&sweep, &Scheme::SINGLE_HASH, &uniform, "--- Fig. 8 ---");
    print_normalized_times(&sweep, &Scheme::MULTI_HASH, &non_uniform, "--- Fig. 9 ---");
    print_normalized_times(&sweep, &Scheme::MULTI_HASH, &uniform, "--- Fig. 10 ---");

    // ---- Table 4 ---------------------------------------------------------
    println!("--- Table 4 ---");
    let rows = table4(
        &sweep,
        &[
            Scheme::Xor,
            Scheme::PrimeModulo,
            Scheme::PrimeDisplacement,
            Scheme::Skewed,
            Scheme::SkewedPrimeDisplacement,
        ],
    );
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.label().to_owned(),
                format!(
                    "{},{},{}",
                    f2(r.uniform.0),
                    f2(r.uniform.1),
                    f2(r.uniform.2)
                ),
                format!(
                    "{},{},{}",
                    f2(r.non_uniform.0),
                    f2(r.non_uniform.1),
                    f2(r.non_uniform.2)
                ),
                r.pathological.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "Hashing",
                "Uniform (min,avg,max)",
                "Nonuniform (min,avg,max)",
                "Patho."
            ],
            &table_rows
        )
    );
    println!();

    // ---- Figs. 11/12 -----------------------------------------------------
    eprintln!("[2/2] miss-reduction sweep ({} schemes x 23 apps) ...", 5);
    let miss_sweep = miss_reduction_sweep(refs);
    print_normalized_misses(
        &miss_sweep,
        &Scheme::MISS_REDUCTION,
        &non_uniform,
        "--- Fig. 11 ---",
    );
    print_normalized_misses(
        &miss_sweep,
        &Scheme::MISS_REDUCTION,
        &uniform,
        "--- Fig. 12 ---",
    );

    // ---- Fig. 13 ---------------------------------------------------------
    println!("--- Fig. 13: tree's per-set miss distribution ---");
    for scheme in [Scheme::Base, Scheme::PrimeModulo] {
        let dist = fig13_miss_distribution(scheme, refs);
        let total: u64 = dist.iter().sum();
        println!(
            "  {:>5}: {total} misses; 90% of them in {:.1}% of the sets",
            scheme.label(),
            sets_carrying_share(&dist, 0.90) * 100.0
        );
    }
    println!("\ndone.");
}
