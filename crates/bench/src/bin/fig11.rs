//! Regenerates Fig. 11: normalized L2 miss counts (Base, pMod, pDisp,
//! skw+pDisp, FA) on the non-uniform applications.

use primecache_bench::{groups, print_normalized_misses, refs_from_args};
use primecache_sim::experiments::miss_reduction_sweep;
use primecache_sim::Scheme;

fn main() {
    let refs = refs_from_args();
    let sweep = miss_reduction_sweep(refs);
    let (non_uniform, _) = groups();
    print_normalized_misses(
        &sweep,
        &Scheme::MISS_REDUCTION,
        &non_uniform,
        "Fig. 11: normalized L2 misses, non-uniform applications",
    );
    println!("paper: pMod/pDisp remove >30% of misses on average, nearly all for bt and");
    println!("       tree; skw+pDisp beats FA on cg (it removes some capacity misses)");
}
