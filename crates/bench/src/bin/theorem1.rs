//! Regenerates the §3.1 Theorem 1 analysis: iterations of the iterative
//! linear method across machine widths and selector sizes, checked against
//! the bit-level unit.

use primecache_core::hw::{theorem1_iterations, IterativeLinear};
use primecache_core::index::Geometry;
use primecache_sim::report::render_table;

fn measured_worst(geom: Geometry, t: u32, bits: u32) -> u32 {
    let unit = IterativeLinear::new(geom, t);
    let max_block = if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    // Probe the worst candidates: all-ones values of decreasing width.
    let mut worst = 0;
    let mut v = max_block;
    while v > 0 {
        worst = worst.max(unit.reduce_with_cost(v).1.iterations);
        v >>= 1;
    }
    worst
}

fn main() {
    println!("Theorem 1: iterations of the iterative linear method (64-B lines)\n");
    let mut rows = Vec::new();
    for (b, phys, t) in [
        (32u32, 2048u64, 0u32),
        (32, 2048, 8),
        (64, 2048, 0),
        (64, 2048, 8),
        (32, 8192, 0),
        (64, 8192, 0),
        (64, 16384, 0),
    ] {
        let bound = theorem1_iterations(b, 64, phys, t);
        let geom = Geometry::new(phys);
        let block_bits = b - 6; // strip the 64-B offset
        let measured = measured_worst(geom, t, block_bits);
        rows.push(vec![
            format!("{b}-bit"),
            phys.to_string(),
            format!("{} inputs", (1u32 << t) + 2),
            bound.to_string(),
            measured.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "machine",
                "n_set_phys",
                "selector",
                "Theorem 1 bound",
                "model (Eq. 3, terminal selector)"
            ],
            &rows
        )
    );
    println!("\npaper examples: 32-bit/2048 sets -> 2 iterations; 64-bit -> 6 with a");
    println!("3-input selector, 3 with a 258-input one. The Eq.-3 bit-level model only");
    println!("uses the selector terminally, so its wide-selector count sits between");
    println!("the two bounds (see crates/core/src/hw/iterative.rs).");
}
