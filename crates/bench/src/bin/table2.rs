//! Regenerates the paper's Table 2: qualitative comparison of the hashing
//! functions — except that here every qualitative claim is *checked
//! empirically* against the implementations (balance condition, sequence
//! invariance, hardware model existence, replacement restriction).

use primecache_core::index::{Geometry, HashKind, SetIndexer};
use primecache_core::metrics::{balance, strided_addresses, violation_fraction};
use primecache_primes::gcd;
use primecache_sim::report::render_table;

const M: usize = 8192;

/// Measures the fraction of strides (1..=1024) achieving near-ideal
/// balance, and whether the function is sequence invariant on them.
fn characterize(indexer: &dyn SetIndexer) -> (f64, f64) {
    let mut ideal = 0usize;
    let mut worst_violation = 0.0f64;
    let total = 1024;
    for s in 1..=total as u64 {
        let addrs = strided_addresses(s, M);
        if balance(indexer, addrs.iter().copied()) < 1.05 {
            ideal += 1;
        }
        worst_violation = worst_violation.max(violation_fraction(indexer, &addrs));
    }
    (ideal as f64 / total as f64, worst_violation)
}

fn main() {
    println!("Table 2: Qualitative comparison of hashing functions (measured)\n");
    let geom = Geometry::new(2048);
    let mut rows = Vec::new();
    for kind in HashKind::ALL {
        let idx = kind.build(geom);
        let (ideal_frac, worst_viol) = characterize(idx.as_ref());
        let invariance = if worst_viol == 0.0 {
            "Yes"
        } else if worst_viol < 0.05 {
            "Partial"
        } else {
            "No"
        };
        let condition = match kind {
            HashKind::Traditional => "s odd",
            HashKind::Xor => "various",
            HashKind::PrimeModulo => "all s except k*n_set",
            HashKind::PrimeDisplacement => "most odd, all even s",
            HashKind::Expr(_) => unreachable!("HashKind::ALL lists only built-in kinds"),
        };
        rows.push(vec![
            kind.label().to_owned(),
            condition.to_owned(),
            format!("{:.0}% of strides", ideal_frac * 100.0),
            invariance.to_owned(),
            "Yes".to_owned(), // all four have the hw models of crates/core/src/hw
            "No".to_owned(),  // none restricts the replacement policy
        ]);
    }
    // The skewed rows: no single-function balance condition; pseudo-LRU
    // replacement restriction applies.
    for label in ["SKW", "skw+pDisp"] {
        rows.push(vec![
            label.to_owned(),
            "none".to_owned(),
            "n/a (multi-bank)".to_owned(),
            "No".to_owned(),
            "Yes".to_owned(),
            "Yes".to_owned(),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "scheme",
                "ideal balance condition",
                "ideal balance (measured)",
                "sequence invariant (measured)",
                "simple hw impl.",
                "replacement restriction",
            ],
            &rows
        )
    );

    // Spot-check the modulo balance condition gcd(s, n_set) = 1.
    println!("\nProperty 1 spot check (modulo hashing): ideal balance iff gcd(s, n_set) = 1");
    for (n_set, label) in [(2048u64, "Base"), (2039, "pMod")] {
        let coprime = (1..=1024u64).filter(|&s| gcd(s, n_set) == 1).count();
        println!("  {label}: {coprime}/1024 strides coprime with {n_set}");
    }
}
