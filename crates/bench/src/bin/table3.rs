//! Regenerates the paper's Table 3: parameters of the simulated machine.

use primecache_sim::MachineConfig;

fn main() {
    let m = MachineConfig::paper_default();
    println!("Table 3: Parameters of the simulated architecture\n");
    println!("PROCESSOR");
    println!(
        "  {}-issue dynamic. 1.6 GHz. Pending ld, st: {}, {}. Branch penalty: {} cycles",
        m.cpu.issue_width, m.cpu.max_pending_loads, m.cpu.max_pending_stores, m.cpu.branch_penalty
    );
    println!("MEMORY");
    println!(
        "  L1 data: write-back, 16 KB, 2 way, 32-B line, {}-cycle hit RT",
        m.cpu.l1_hit_cycles
    );
    println!(
        "  L2 data: write-back, {} KB, 4 way, {}-B line, {}-cycle hit RT",
        m.l2_size / 1024,
        m.l2_line,
        m.cpu.l2_hit_cycles
    );
    println!(
        "  RT memory latency: {} cycles (row miss), {} cycles (row hit)",
        m.mem.row_miss_cycles, m.mem.row_hit_cycles
    );
    println!(
        "  Memory bus: split-transaction, {} B, 400 MHz, 3.2 GB/sec peak ({} cycles per 64-B line)",
        m.mem.bus_bytes,
        m.mem.bus_occupancy_cycles()
    );
    println!(
        "  DRAM: {} channels x {} banks, {}-B rows",
        m.mem.channels, m.mem.banks_per_channel, m.mem.row_bytes
    );
}
