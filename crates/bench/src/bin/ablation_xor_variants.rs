//! Extension study: does a stronger XOR (full tag fold) close the gap to
//! prime hashing?
//!
//! §3.3 argues XOR's problem is not *which* bits it mixes but that no XOR
//! fold is sequence invariant. This study compares plain `t1 ⊕ x`, the
//! full fold, and pMod on the metric sweep and on end-to-end misses.

use primecache_bench::refs_from_args;
use primecache_cache::{Cache, CacheConfig, CacheSim};
use primecache_core::index::{Geometry, PrimeModulo, SetIndexer, Xor, XorFolded};
use primecache_core::metrics::{balance, concentration, strided_addresses};
use primecache_sim::report::render_table;
use primecache_workloads::all;

fn metric_quality(idx: &dyn SetIndexer) -> (usize, usize) {
    let mut bad_bal = 0;
    let mut bad_conc = 0;
    for s in 1..=1024u64 {
        let addrs = strided_addresses(s, 8192);
        if balance(idx, addrs.iter().copied()) > 1.05 {
            bad_bal += 1;
        }
        if concentration(idx, addrs.iter().copied()) > 1.0 {
            bad_conc += 1;
        }
    }
    (bad_bal, bad_conc)
}

fn app_misses(indexer: Box<dyn SetIndexer>, name: &str, refs: u64) -> u64 {
    let cfg = CacheConfig::new(512 * 1024, 4, 64);
    let mut cache = Cache::with_indexer(cfg, indexer);
    let w = all().iter().find(|w| w.name == name).expect("known app");
    for ev in w.trace(refs) {
        if let Some(addr) = ev.addr() {
            cache.access(addr, matches!(ev, primecache_trace::Event::Store { .. }));
        }
    }
    cache.stats().misses
}

/// A named indexer factory.
type IndexerFactory = Box<dyn Fn() -> Box<dyn SetIndexer>>;

fn main() {
    let refs = refs_from_args().min(300_000);
    let geom = Geometry::new(2048);
    println!("XOR-variant ablation (strides 1..1024; misses at {refs} refs)\n");
    let mut rows = Vec::new();
    let builders: Vec<(&str, IndexerFactory)> = vec![
        ("XOR (t1^x)", Box::new(move || Box::new(Xor::new(geom)))),
        ("XOR-fold", Box::new(move || Box::new(XorFolded::new(geom)))),
        ("pMod", Box::new(move || Box::new(PrimeModulo::new(geom)))),
    ];
    for (name, make) in &builders {
        let (bad_bal, bad_conc) = metric_quality(make().as_ref());
        rows.push(vec![
            (*name).to_owned(),
            format!("{bad_bal}/1024"),
            format!("{bad_conc}/1024"),
            app_misses(make(), "bt", refs).to_string(),
            app_misses(make(), "ft", refs).to_string(),
            app_misses(make(), "tree", refs).to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "scheme",
                "non-ideal balance",
                "non-ideal concentration",
                "bt misses",
                "ft misses",
                "tree misses",
            ],
            &rows
        )
    );
    println!("\nFolding more bits fixes some alias families, but the concentration");
    println!("column — the §3.3 sequence-invariance argument — does not improve:");
    println!("XOR's pathology is structural, not a matter of picking better bits.");
}
