//! Extension study: victim cache vs prime indexing.
//!
//! Jouppi's victim buffer is the classic hardware remedy for conflict
//! misses. It absorbs *narrow* conflicts (a few aliasing lines) but its
//! capacity is a global constant, while rehashing redistributes every
//! set. This study runs the suite under a Base L2 with an 8- and a
//! 64-entry victim buffer and compares against pMod.

use primecache_bench::refs_from_args;
use primecache_cache::{Cache, CacheConfig, CacheSim, VictimCache};
use primecache_core::index::HashKind;
use primecache_sim::report::render_table;
use primecache_workloads::all;

fn misses(workload: &primecache_workloads::Workload, cache: &mut dyn CacheSim, refs: u64) -> u64 {
    for ev in workload.trace(refs) {
        if let Some(addr) = ev.addr() {
            cache.access(addr, matches!(ev, primecache_trace::Event::Store { .. }));
        }
    }
    cache.stats().misses
}

fn main() {
    let refs = refs_from_args().min(300_000);
    let cfg = CacheConfig::new(512 * 1024, 4, 64);
    println!("Victim-cache ablation (misses normalized to Base), {refs} refs\n");
    let mut rows = Vec::new();
    for w in all().iter().filter(|w| w.expected_non_uniform) {
        let base = misses(w, &mut Cache::new(cfg), refs) as f64;
        let v8 = misses(w, &mut VictimCache::new(cfg, 8), refs) as f64;
        let v64 = misses(w, &mut VictimCache::new(cfg, 64), refs) as f64;
        let pmod = misses(
            w,
            &mut Cache::new(cfg.with_hash(HashKind::PrimeModulo)),
            refs,
        ) as f64;
        rows.push(vec![
            w.name.to_owned(),
            format!("{:.3}", v8 / base.max(1.0)),
            format!("{:.3}", v64 / base.max(1.0)),
            format!("{:.3}", pmod / base.max(1.0)),
        ]);
    }
    print!(
        "{}",
        render_table(&["app", "victim x8", "victim x64", "pMod"], &rows)
    );
    println!("\nThe buffer helps while the alias population fits in it; the paper's");
    println!("workloads alias hundreds of lines, so even 64 entries barely dent the");
    println!("misses that a zero-capacity-cost rehash removes outright.");
}
