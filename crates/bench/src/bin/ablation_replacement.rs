//! Ablation: replacement policies.
//!
//! Two questions from the paper:
//! * §5.3: does the skewed cache's inter-bank policy matter? ("We have
//!   also tried ... NRUNRW. We found that it gives similar results.")
//! * implicitly: how much of the pathological behaviour of skewed caches
//!   comes from pseudo-LRU replacement rather than from the hashing?
//!   (Compared here by running the set-associative L2 under progressively
//!   weaker policies.)

use primecache_bench::refs_from_args;
use primecache_cache::{
    Cache, CacheConfig, CacheSim, ReplacementKind, SkewHashKind, SkewReplacement, SkewedCache,
    SkewedConfig,
};
use primecache_sim::report::render_table;
use primecache_workloads::by_name;

fn misses_set_assoc(workload: &str, kind: ReplacementKind, refs: u64) -> u64 {
    let mut l2 = Cache::new(CacheConfig::new(512 * 1024, 4, 64).with_replacement(kind));
    for ev in by_name(workload).expect("known workload").trace(refs) {
        if let Some(addr) = ev.addr() {
            l2.access(addr, matches!(ev, primecache_trace::Event::Store { .. }));
        }
    }
    l2.stats().misses
}

fn misses_skewed(workload: &str, repl: SkewReplacement, refs: u64) -> u64 {
    let mut l2 = SkewedCache::new(
        SkewedConfig::new(512 * 1024, 4, 64, SkewHashKind::PrimeDisplacement)
            .with_replacement(repl),
    );
    for ev in by_name(workload).expect("known workload").trace(refs) {
        if let Some(addr) = ev.addr() {
            l2.access(addr, matches!(ev, primecache_trace::Event::Store { .. }));
        }
    }
    l2.stats().misses
}

fn main() {
    let refs = refs_from_args().min(300_000);
    let apps = ["bzip2", "sparse", "tree", "bt", "mst", "charmm"];

    println!("Ablation A: skewed inter-bank replacement (ENRU vs NRUNRW)\n");
    let mut rows = Vec::new();
    for app in apps {
        let enru = misses_skewed(app, SkewReplacement::Enru, refs);
        let nrunrw = misses_skewed(app, SkewReplacement::Nrunrw, refs);
        rows.push(vec![
            app.to_owned(),
            enru.to_string(),
            nrunrw.to_string(),
            format!("{:.3}", nrunrw as f64 / enru.max(1) as f64),
        ]);
    }
    print!(
        "{}",
        render_table(&["app", "ENRU misses", "NRUNRW misses", "ratio"], &rows)
    );
    println!("\npaper §5.3: \"it gives similar results\" — ratios should sit near 1.\n");

    println!("Ablation B: set-associative L2 replacement (Base hashing)\n");
    let kinds = [
        ReplacementKind::Lru,
        ReplacementKind::TreePlru,
        ReplacementKind::Nru,
        ReplacementKind::Fifo,
        ReplacementKind::Random,
    ];
    let mut header = vec!["app"];
    header.extend(["LRU", "TreePLRU", "NRU", "FIFO", "Random"]);
    let mut rows = Vec::new();
    for app in apps {
        let mut row = vec![app.to_owned()];
        let lru = misses_set_assoc(app, ReplacementKind::Lru, refs);
        for kind in kinds {
            let m = misses_set_assoc(app, kind, refs);
            row.push(format!("{:.3}", m as f64 / lru.max(1) as f64));
        }
        rows.push(row);
    }
    print!("{}", render_table(&header, &rows));
    println!("\n(normalized to LRU; > 1 means the weaker policy loses ground — the");
    println!("LRU-friendly cyclic apps like bzip2/sparse are the ones that suffer,");
    println!("which is exactly the population the skewed caches slow in Fig. 10)");
}
