//! Extension study: does next-line prefetching subsume prime indexing?
//!
//! A sequential prefetcher hides streaming misses — the cheap kind — but
//! conflict misses evict lines that *will* be re-used at distance, which a
//! next-line prefetcher cannot anticipate. This study runs the non-uniform
//! apps with an idealized depth-2 next-line prefetcher under Base and pMod
//! and shows that prime indexing's gains survive.

use primecache_bench::refs_from_args;
use primecache_cache::Hierarchy;
use primecache_cpu::{Cpu, CpuConfig};
use primecache_mem::{Dram, MemConfig};
use primecache_sim::report::render_table;
use primecache_sim::{MachineConfig, Scheme};
use primecache_workloads::all;

fn run(workload: &primecache_workloads::Workload, scheme: Scheme, depth: u32, refs: u64) -> u64 {
    let machine = MachineConfig::paper_default();
    let cfg = machine.hierarchy_config(scheme).with_prefetch_depth(depth);
    let mut h = Hierarchy::new(cfg);
    let mut d = Dram::new(MemConfig::paper_default());
    let mut cpu = Cpu::new(CpuConfig::paper_default());
    cpu.run(workload.trace(refs), &mut h, &mut d).total()
}

fn main() {
    let refs = refs_from_args().min(300_000);
    println!("Prefetch ablation: idealized depth-2 next-line prefetch, {refs} refs\n");
    let mut rows = Vec::new();
    for w in all().iter().filter(|w| w.expected_non_uniform) {
        let base = run(w, Scheme::Base, 0, refs);
        let base_pf = run(w, Scheme::Base, 2, refs);
        let pmod_pf = run(w, Scheme::PrimeModulo, 2, refs);
        rows.push(vec![
            w.name.to_owned(),
            format!("{:.2}", base as f64 / base_pf as f64),
            format!("{:.2}", base as f64 / pmod_pf as f64),
            format!("{:.2}", base_pf as f64 / pmod_pf as f64),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "app",
                "prefetch alone (vs Base)",
                "pMod + prefetch (vs Base)",
                "pMod gain on top of prefetch",
            ],
            &rows
        )
    );
    println!("\nIf the last column stays well above 1.0, prime indexing removes");
    println!("misses the prefetcher cannot — conflict evictions of far-future reuse.");
}
