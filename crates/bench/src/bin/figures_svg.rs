//! Renders the paper's figures as SVG files into `figures/`.
//!
//! `cargo run --release -p primecache-bench --bin figures_svg [-- --refs N]`
//!
//! Produces `fig5.svg` … `fig13.svg`, visually comparable with the paper.

use std::fs;
use std::path::Path;

use primecache_bench::{groups, refs_from_args};
use primecache_core::index::HashKind;
use primecache_sim::experiments::{
    exec_time_sweep, fig13_miss_distribution, fig5_balance, fig6_concentration,
    miss_reduction_sweep,
};
use primecache_sim::suite::Sweep;
use primecache_sim::Scheme;
use primecache_viz::{BarChart, BarGroup, LineChart, Series};

fn write(dir: &Path, name: &str, svg: String) {
    let path = dir.join(name);
    fs::write(&path, svg).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

fn line_figure(
    title: &str,
    y_label: &str,
    cap: Option<f64>,
    data: impl Fn(HashKind) -> Vec<primecache_sim::experiments::StridePoint>,
) -> String {
    let mut chart = LineChart::new(title, "stride (blocks)", y_label);
    if let Some(c) = cap {
        chart = chart.with_y_cap(c);
    }
    for kind in HashKind::ALL {
        let pts: Vec<(f64, f64)> = data(kind)
            .into_iter()
            .map(|p| (p.stride as f64, p.value))
            .collect();
        chart = chart.with_series(Series::new(kind.label(), pts));
    }
    chart.render(760, 420)
}

fn time_bars(sweep: &Sweep, schemes: &[Scheme], names: &[&str], title: &str) -> String {
    let mut chart = BarChart::new(
        title,
        "normalized execution time",
        &schemes.iter().map(|s| s.label()).collect::<Vec<_>>(),
    );
    for &name in names {
        let values: Vec<f64> = schemes
            .iter()
            .map(|&s| sweep.normalized_time(name, s).unwrap_or(0.0))
            .collect();
        chart = chart.with_group(BarGroup::new(name, values));
    }
    chart.render(900, 420)
}

fn miss_bars(sweep: &Sweep, schemes: &[Scheme], names: &[&str], title: &str) -> String {
    let mut chart = BarChart::new(
        title,
        "normalized L2 misses",
        &schemes.iter().map(|s| s.label()).collect::<Vec<_>>(),
    );
    for &name in names {
        // `normalized_misses` is None when the Base run has zero L2 misses
        // (the ratio is undefined, not "all misses eliminated"); skip the
        // group instead of plotting a misleading zero-height bar.
        let values: Option<Vec<f64>> = schemes
            .iter()
            .map(|&s| sweep.normalized_misses(name, s))
            .collect();
        match values {
            Some(values) => chart = chart.with_group(BarGroup::new(name, values)),
            None => eprintln!("{title}: skipping {name} (zero-miss baseline)"),
        }
    }
    chart.render(900, 420)
}

fn miss_histogram(title: &str, dist: &[u64], y_max: f64) -> String {
    // Downsample the 2000+ sets into 64 buckets for a readable histogram.
    let buckets = 64usize;
    let chunk = dist.len().div_ceil(buckets);
    let mut chart = BarChart::new(title, "misses", &["misses"]).with_y_max(y_max);
    for (i, c) in dist.chunks(chunk).enumerate() {
        let total: u64 = c.iter().sum();
        chart = chart.with_group(BarGroup::new(
            if i % 8 == 0 {
                format!("{}", i * chunk)
            } else {
                String::new()
            },
            vec![total as f64],
        ));
    }
    chart.render(900, 320)
}

fn main() {
    let refs = refs_from_args().min(500_000);
    let dir = Path::new("figures");
    fs::create_dir_all(dir).expect("cannot create figures/");

    println!("[1/4] metric sweeps ...");
    write(
        dir,
        "fig5.svg",
        line_figure(
            "Fig. 5: balance vs stride",
            "balance (ideal 1)",
            Some(10.0),
            |k| fig5_balance(k, 2047),
        ),
    );
    write(
        dir,
        "fig6.svg",
        line_figure(
            "Fig. 6: concentration vs stride",
            "concentration (ideal 0)",
            None,
            |k| fig6_concentration(k, 2047),
        ),
    );

    println!("[2/4] execution-time sweep ({refs} refs) ...");
    let (non_uniform, uniform) = groups();
    let sweep = exec_time_sweep(
        &[
            Scheme::Base,
            Scheme::EightWay,
            Scheme::Xor,
            Scheme::PrimeModulo,
            Scheme::PrimeDisplacement,
            Scheme::Skewed,
            Scheme::SkewedPrimeDisplacement,
        ],
        refs,
    );
    write(
        dir,
        "fig7.svg",
        time_bars(
            &sweep,
            &Scheme::SINGLE_HASH,
            &non_uniform,
            "Fig. 7: single hash, non-uniform apps",
        ),
    );
    write(
        dir,
        "fig8.svg",
        time_bars(
            &sweep,
            &Scheme::SINGLE_HASH,
            &uniform,
            "Fig. 8: single hash, uniform apps",
        ),
    );
    write(
        dir,
        "fig9.svg",
        time_bars(
            &sweep,
            &Scheme::MULTI_HASH,
            &non_uniform,
            "Fig. 9: multi hash, non-uniform apps",
        ),
    );
    write(
        dir,
        "fig10.svg",
        time_bars(
            &sweep,
            &Scheme::MULTI_HASH,
            &uniform,
            "Fig. 10: multi hash, uniform apps",
        ),
    );

    println!("[3/4] miss-reduction sweep ({refs} refs) ...");
    let misses = miss_reduction_sweep(refs);
    write(
        dir,
        "fig11.svg",
        miss_bars(
            &misses,
            &Scheme::MISS_REDUCTION,
            &non_uniform,
            "Fig. 11: misses, non-uniform apps",
        ),
    );
    write(
        dir,
        "fig12.svg",
        miss_bars(
            &misses,
            &Scheme::MISS_REDUCTION,
            &uniform,
            "Fig. 12: misses, uniform apps",
        ),
    );

    println!("[4/4] fig13 distributions ...");
    let base = fig13_miss_distribution(Scheme::Base, refs);
    let pmod = fig13_miss_distribution(Scheme::PrimeModulo, refs);
    // Shared y scale so the elimination is visible, as in the paper.
    let chunk = base.len().div_ceil(64);
    let y_max = base
        .chunks(chunk)
        .map(|c| c.iter().sum::<u64>() as f64)
        .fold(1.0f64, f64::max);
    write(
        dir,
        "fig13a.svg",
        miss_histogram("Fig. 13a: tree misses per set (Base)", &base, y_max),
    );
    write(
        dir,
        "fig13b.svg",
        miss_histogram("Fig. 13b: tree misses per set (pMod)", &pmod, y_max),
    );
    println!("done.");
}
