//! Regenerates Fig. 13: the distribution of L2 misses across cache sets
//! for `tree`, under traditional (Base) and prime-modulo (pMod) hashing.

use primecache_bench::refs_from_args;
use primecache_sim::experiments::{fig13_miss_distribution, sets_carrying_share};
use primecache_sim::Scheme;

fn histogram_sketch(dist: &[u64], buckets: usize) -> Vec<u64> {
    let chunk = dist.len().div_ceil(buckets);
    dist.chunks(chunk).map(|c| c.iter().sum()).collect()
}

fn print_distribution(label: &str, dist: &[u64]) {
    let total: u64 = dist.iter().sum();
    let hot10 = sets_carrying_share(dist, 0.90);
    println!("{label}: {total} misses over {} sets", dist.len());
    println!("  90% of misses fall in {:.1}% of the sets", hot10 * 100.0);
    let sketch = histogram_sketch(dist, 32);
    let max = sketch.iter().copied().max().unwrap_or(1).max(1);
    for (i, &v) in sketch.iter().enumerate() {
        let bar = "#".repeat((v * 50 / max) as usize);
        println!("  sets {:>5}+ |{bar}", i * dist.len() / 32);
    }
    println!();
}

fn main() {
    let refs = refs_from_args();
    println!("Fig. 13: distribution of L2 misses across sets for tree\n");
    let base = fig13_miss_distribution(Scheme::Base, refs);
    let pmod = fig13_miss_distribution(Scheme::PrimeModulo, refs);
    print_distribution("(a) Base", &base);
    print_distribution("(b) pMod", &pmod);
    println!("paper: under Base the vast majority of misses concentrate in ~10% of the");
    println!("       sets; pMod spreads the accesses and eliminates most of those misses");
}
