//! Regenerates Fig. 7: normalized execution times of the single-hash
//! schemes on the applications with non-uniform cache accesses.

use primecache_bench::{groups, print_breakdown_segments, print_normalized_times, refs_from_args};
use primecache_sim::experiments::exec_time_sweep;
use primecache_sim::Scheme;

fn main() {
    let refs = refs_from_args();
    let segments = std::env::args().any(|a| a == "--segments");
    let sweep = exec_time_sweep(&Scheme::SINGLE_HASH, refs);
    let (non_uniform, _) = groups();
    print_normalized_times(
        &sweep,
        &Scheme::SINGLE_HASH,
        &non_uniform,
        "Fig. 7: single hashing functions, non-uniform applications",
    );
    if segments {
        print_breakdown_segments(
            &sweep,
            &Scheme::SINGLE_HASH,
            &non_uniform,
            "Fig. 7 stacked bars (Busy + Other Stalls + Memory Stall)",
        );
    }
    println!("paper: pMod and pDisp average speedup 1.27, XOR 1.21 on this group");
}
