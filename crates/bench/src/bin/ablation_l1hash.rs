//! Extension study: alternative hashing for the **L1** cache.
//!
//! §3.3: XOR's balance collapses on strides near `n_set − 1`, and with the
//! tiny set counts of an L1 those strides are common — "this makes the XOR
//! a particularly bad choice for indexing the L1 cache". pDisp keeps its
//! balance. This study rehashes the paper's 16 KB 2-way L1 (256 sets) and
//! measures L1 miss rates across the suite.
//!
//! (The paper deliberately keeps the L1 traditionally indexed because any
//! extra level of logic sits on the L1 critical path; this study is about
//! the *balance* argument, not a proposal.)

use primecache_bench::refs_from_args;
use primecache_cache::{Cache, CacheConfig, CacheSim};
use primecache_core::index::HashKind;
use primecache_sim::report::render_table;
use primecache_workloads::all;

fn l1_miss_rate(workload: &primecache_workloads::Workload, hash: HashKind, refs: u64) -> f64 {
    let mut l1 = Cache::new(CacheConfig::new(16 * 1024, 2, 32).with_hash(hash));
    for ev in workload.trace(refs) {
        if let Some(addr) = ev.addr() {
            l1.access(addr, matches!(ev, primecache_trace::Event::Store { .. }));
        }
    }
    l1.stats().miss_rate()
}

fn main() {
    let refs = refs_from_args().min(300_000);
    println!("L1 hashing ablation (16 KB, 2-way, 32-B lines, 256 sets), {refs} refs\n");
    let mut rows = Vec::new();
    let mut worse_than_base = [0usize; 4];
    for w in all() {
        let rates: Vec<f64> = HashKind::ALL
            .iter()
            .map(|&k| l1_miss_rate(w, k, refs))
            .collect();
        for (i, &r) in rates.iter().enumerate() {
            if r > rates[0] * 1.01 {
                worse_than_base[i] += 1;
            }
        }
        let mut row = vec![w.name.to_owned()];
        row.extend(rates.iter().map(|r| format!("{:.2}%", r * 100.0)));
        rows.push(row);
    }
    let mut header = vec!["app"];
    header.extend(HashKind::ALL.iter().map(|k| k.label()));
    print!("{}", render_table(&header, &rows));
    println!();
    for (i, k) in HashKind::ALL.iter().enumerate() {
        println!(
            "  {:>6}: worse than Base (>1% relative) on {} of 23 apps",
            k.label(),
            worse_than_base[i]
        );
    }
    println!("\npaper §3.3's prediction: XOR degrades more apps at L1 granularity than");
    println!("the prime functions do.");
}
