//! Extension study: the three-C miss taxonomy per application.
//!
//! The paper argues its gains come from *conflict* misses specifically
//! (capacity and compulsory misses are placement-independent). This binary
//! decomposes each application's Base-L2 misses into compulsory /
//! capacity / conflict and shows what fraction pMod actually removes —
//! the quantitative backing of Figs. 11/12.

use primecache_bench::refs_from_args;
use primecache_sim::experiments::miss_taxonomy;
use primecache_sim::report::render_table;
use primecache_sim::Scheme;
use primecache_workloads::all;

fn main() {
    let refs = refs_from_args().min(400_000);
    println!("Three-C miss taxonomy (Base L2 vs pMod L2), {refs} refs/app\n");
    let mut rows = Vec::new();
    for w in all() {
        let base = miss_taxonomy(w, Scheme::Base, refs);
        let pmod = miss_taxonomy(w, Scheme::PrimeModulo, refs);
        rows.push(vec![
            w.name.to_owned(),
            if w.expected_non_uniform {
                "non-uniform"
            } else {
                "uniform"
            }
            .to_owned(),
            base.compulsory.to_string(),
            base.capacity.to_string(),
            base.conflict.to_string(),
            format!("{:.0}%", base.conflict_fraction() * 100.0),
            pmod.conflict.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "app",
                "class",
                "compulsory",
                "capacity",
                "conflict (Base)",
                "conflict share",
                "conflict (pMod)",
            ],
            &rows
        )
    );
    println!("\nExpected shape: the non-uniform apps carry large conflict components");
    println!("under Base that pMod mostly eliminates; uniform apps are dominated by");
    println!("compulsory + capacity misses that no index function can remove.");
}
