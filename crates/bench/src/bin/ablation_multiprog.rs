//! Extension study: two applications sharing the L2.
//!
//! Prime indexing fixes conflicts within one address space — does the
//! benefit survive a co-runner polluting the shared L2? Each non-uniform
//! app is interleaved (10k-instruction quanta, disjoint address regions)
//! with `swim`, a uniform streaming co-runner, and the combined trace runs
//! under Base and pMod.

use primecache_bench::refs_from_args;
use primecache_sim::report::render_table;
use primecache_sim::{run_trace, MachineConfig, Scheme};
use primecache_trace::{interleave, offset_addresses};
use primecache_workloads::{all, by_name};

fn main() {
    let refs = refs_from_args().min(200_000);
    println!("Shared-L2 ablation: each app co-scheduled with swim, {refs} refs each\n");
    let machine = MachineConfig::paper_default();
    let co_runner = by_name("swim").expect("registry has swim");
    let mut rows = Vec::new();
    for w in all().iter().filter(|w| w.expected_non_uniform) {
        // Solo.
        let solo_base = run_trace(w.trace(refs), Scheme::Base, &machine);
        let solo_pmod = run_trace(w.trace(refs), Scheme::PrimeModulo, &machine);
        // Shared: co-runner relocated far away, interleaved in quanta.
        let shared = |scheme| {
            let other = offset_addresses(co_runner.trace(refs), 0x40_0000_0000);
            let merged = interleave(w.trace(refs), other, 10_000);
            run_trace(merged, scheme, &machine)
        };
        let shared_base = shared(Scheme::Base);
        let shared_pmod = shared(Scheme::PrimeModulo);
        rows.push(vec![
            w.name.to_owned(),
            format!(
                "{:.2}",
                solo_base.breakdown.total() as f64 / solo_pmod.breakdown.total() as f64
            ),
            format!(
                "{:.2}",
                shared_base.breakdown.total() as f64 / shared_pmod.breakdown.total() as f64
            ),
            format!(
                "{:.3}",
                shared_pmod.l2.misses as f64 / shared_base.l2.misses.max(1) as f64
            ),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "app (+swim)",
                "solo pMod speedup",
                "shared pMod speedup",
                "shared norm misses",
            ],
            &rows
        )
    );
    println!("\nConflict piles are an address-layout property, so they survive");
    println!("co-scheduling; the co-runner dilutes the benefit (its own time is");
    println!("hash-insensitive) but never inverts it.");
}
