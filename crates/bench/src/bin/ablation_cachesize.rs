//! Extension study: does prime indexing still matter at other L2 sizes?
//!
//! Conflict misses are a *placement* problem: growing the cache grows the
//! number of sets, which moves the aliasing pattern but does not, by
//! itself, remove aliases (the paper's 8-way argument, capacity edition).
//! This study sweeps the L2 from 256 KB to 2 MB at constant 4-way
//! associativity and reports the pMod speedup at each point.

use primecache_bench::refs_from_args;
use primecache_sim::report::render_table;
use primecache_sim::{run_trace, MachineConfig, Scheme};
use primecache_workloads::all;

fn speedup(workload: &primecache_workloads::Workload, l2_size: u64, refs: u64) -> f64 {
    let machine = MachineConfig {
        l2_size,
        ..MachineConfig::paper_default()
    };
    let base = run_trace(workload.trace(refs), Scheme::Base, &machine);
    let pmod = run_trace(workload.trace(refs), Scheme::PrimeModulo, &machine);
    base.breakdown.total() as f64 / pmod.breakdown.total() as f64
}

fn main() {
    let refs = refs_from_args().min(300_000);
    let sizes = [256u64, 512, 1024, 2048]; // KB
    println!("L2-size sensitivity: pMod speedup over Base, 4-way, {refs} refs\n");
    let mut header = vec!["app"];
    let labels: Vec<String> = sizes.iter().map(|s| format!("{s} KB")).collect();
    header.extend(labels.iter().map(String::as_str));
    let mut rows = Vec::new();
    for w in all().iter().filter(|w| w.expected_non_uniform) {
        let mut row = vec![w.name.to_owned()];
        for &kb in &sizes {
            row.push(format!("{:.2}", speedup(w, kb * 1024, refs)));
        }
        rows.push(row);
    }
    print!("{}", render_table(&header, &rows));
    println!("\nAligned-region conflicts scale with the cache (the aliasing period");
    println!("grows with the set count, but so do the applications' aligned");
    println!("allocations), while padded-struct conflicts dilute once the spread");
    println!("footprint fits — the per-app trend tells which mechanism dominates.");
}
