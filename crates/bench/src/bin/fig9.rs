//! Regenerates Fig. 9: normalized execution times of the multi-hash
//! (skewed) schemes on the non-uniform applications.

use primecache_bench::{groups, print_breakdown_segments, print_normalized_times, refs_from_args};
use primecache_sim::experiments::exec_time_sweep;
use primecache_sim::Scheme;

fn main() {
    let refs = refs_from_args();
    let segments = std::env::args().any(|a| a == "--segments");
    let sweep = exec_time_sweep(&Scheme::MULTI_HASH, refs);
    let (non_uniform, _) = groups();
    print_normalized_times(
        &sweep,
        &Scheme::MULTI_HASH,
        &non_uniform,
        "Fig. 9: multiple hashing functions, non-uniform applications",
    );
    if segments {
        print_breakdown_segments(
            &sweep,
            &Scheme::MULTI_HASH,
            &non_uniform,
            "Fig. 9 stacked bars (Busy + Other Stalls + Memory Stall)",
        );
    }
    println!("paper: skw+pDisp best on average (1.35), then SKW (1.31), then pMod (1.27);");
    println!("       cg only speeds up under the skewed schemes");
}
