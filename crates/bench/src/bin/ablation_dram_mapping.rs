//! Extension study: DRAM bank hashing vs cache hashing.
//!
//! The paper's related work (\[26\], Zhang/Zhu/Zhang MICRO 2000) applies the
//! same permute-the-index idea one level down, to DRAM banks. This study
//! runs the suite under all four combinations of {Base, pMod} L2 x
//! {row-interleaved, permutation-based} DRAM, asking: are the two remedies
//! redundant or complementary?

use primecache_bench::refs_from_args;
use primecache_cache::Hierarchy;
use primecache_cpu::{Cpu, CpuConfig};
use primecache_mem::{Dram, MemConfig};
use primecache_sim::report::render_table;
use primecache_sim::{MachineConfig, Scheme};
use primecache_workloads::all;

fn run(
    workload: &primecache_workloads::Workload,
    scheme: Scheme,
    mem: MemConfig,
    refs: u64,
) -> u64 {
    let machine = MachineConfig::paper_default();
    let mut h = Hierarchy::new(machine.hierarchy_config(scheme));
    let mut d = Dram::new(mem);
    let mut cpu = Cpu::new(CpuConfig::paper_default());
    cpu.run(workload.trace(refs), &mut h, &mut d).total()
}

fn main() {
    let refs = refs_from_args().min(300_000);
    println!("DRAM-mapping ablation (row-interleaved vs permutation-based [26]), {refs} refs\n");
    let plain = MemConfig::paper_default();
    let perm = MemConfig::paper_default().with_permutation_mapping();
    let mut rows = Vec::new();
    for w in all().iter().filter(|w| w.expected_non_uniform) {
        let base_plain = run(w, Scheme::Base, plain, refs);
        let base_perm = run(w, Scheme::Base, perm, refs);
        let pmod_plain = run(w, Scheme::PrimeModulo, plain, refs);
        let pmod_perm = run(w, Scheme::PrimeModulo, perm, refs);
        rows.push(vec![
            w.name.to_owned(),
            format!("{:.3}", base_perm as f64 / base_plain as f64),
            format!("{:.3}", pmod_plain as f64 / base_plain as f64),
            format!("{:.3}", pmod_perm as f64 / base_plain as f64),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "app",
                "Base + perm DRAM",
                "pMod + plain DRAM",
                "pMod + perm DRAM",
            ],
            &rows
        )
    );
    println!("\n(normalized to Base + plain DRAM; lower is better)");
    println!("\nBank permutation attacks the *latency* of misses with bank-conflicting");
    println!("strides; prime cache indexing attacks their *count*. For this suite the");
    println!("L2 miss streams are already row-friendly sweeps, so the bank hash is");
    println!("close to neutral — the conflict problem lives in the cache's set index,");
    println!("which is precisely the paper's argument for fixing it there.");
}
