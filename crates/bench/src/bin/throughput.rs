//! End-to-end throughput benchmark: simulated refs/sec per scheme over
//! the full 23-workload suite, written to `BENCH_throughput.json`.
//!
//! ```text
//! cargo run --release -p primecache-bench --bin throughput -- \
//!     [--refs N] [--out FILE] [--baseline FILE] [--max-regress PCT]
//!     [--strict] [--reference] [--live] [--gen-only]
//! ```
//!
//! The default mode is the generate-once/replay-per-scheme pipeline
//! (the dataflow `run_sweep` uses): the suite is recorded into the
//! compact encoded trace store once, every scheme simulates from replay
//! cursors, and the report carries `gen:*`/`replay:*`/`sweep:aggregate`
//! entries alongside the per-scheme numbers. `--live` times the old
//! generate-per-scheme streaming path instead; `--reference` times the
//! pre-batching event-at-a-time driver; `--gen-only` skips simulation
//! entirely and times just the trace pipeline stages.
//!
//! With `--baseline`, the run compares against the committed baseline
//! and exits nonzero when any entry's refs/sec falls more than
//! `--max-regress` percent (default 30) below it — the CI smoke gate.
//! A measured entry missing from the baseline is never gated by that
//! check; it always prints a loud warning, and with `--strict` (the CI
//! default) it fails the run so new entries can't dodge the floor.

use primecache_core::expr::register;
use primecache_sim::throughput::{
    baseline_refs_per_sec, measure, measure_gen_only, measure_reference, measure_replayed,
};
use primecache_sim::Scheme;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let refs: u64 = flag_value(&args, "--refs")
        .map(|v| v.parse().expect("--refs expects a number"))
        .unwrap_or(100_000);
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_throughput.json".to_owned());
    let max_regress: f64 = flag_value(&args, "--max-regress")
        .map(|v| v.parse().expect("--max-regress expects a percentage"))
        .unwrap_or(30.0)
        / 100.0;

    // --reference: time the pre-batching `Box<dyn SetIndexer>` driver
    // instead (bit-identical results) — the before/after comparison
    // should come from the same machine, same session. --live: the
    // generate-per-scheme streaming path replay replaced. --gen-only:
    // just the trace pipeline, no simulation.
    let reference = args.iter().any(|a| a == "--reference");
    let live = args.iter().any(|a| a == "--live");
    let gen_only = args.iter().any(|a| a == "--gen-only");
    let mode = if gen_only {
        "trace pipeline only"
    } else if reference {
        "reference driver"
    } else if live {
        "live streaming"
    } else {
        "recorded replay"
    };
    println!("throughput ({mode}): {refs} refs/workload x 23 workloads per scheme\n");
    // The built-in schemes plus one DSL-compiled scheme: pMod re-expressed
    // in the expression language, so the compiled-closure hot path is held
    // to the same regression floor as the hand-written indexers.
    let expr_pmod = register("expr:pMod", "a % 2039").expect("builtin pMod source compiles");
    let mut schemes = Scheme::ALL.to_vec();
    schemes.push(Scheme::Expr(expr_pmod));
    let report = if gen_only {
        measure_gen_only(refs)
    } else if reference {
        measure_reference(&schemes, refs)
    } else if live {
        measure(&schemes, refs)
    } else {
        measure_replayed(&schemes, refs)
    };
    for s in &report.schemes {
        println!(
            "  {:>10}  {:>12.0} refs/sec  ({} refs in {:.2}s)",
            s.scheme.label(),
            s.refs_per_sec,
            s.refs,
            s.seconds
        );
    }
    for e in &report.extras {
        println!(
            "  {:>15}  {:>12.0} refs/sec  ({} refs in {:.2}s)",
            e.label, e.refs_per_sec, e.refs, e.seconds
        );
    }

    std::fs::write(&out, report.to_json()).expect("write throughput JSON");
    println!("\nwrote {out}");

    if let Some(baseline_path) = flag_value(&args, "--baseline") {
        let json = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let baseline = baseline_refs_per_sec(&json);
        assert!(
            !baseline.is_empty(),
            "baseline {baseline_path} contains no scheme entries"
        );
        let missing = report.missing_from_baseline(&baseline);
        if !missing.is_empty() {
            eprintln!(
                "WARNING: {} entr(y/ies) measured but absent from baseline {baseline_path} \
                 (ungated by the regression check): {}",
                missing.len(),
                missing.join(", ")
            );
            if args.iter().any(|a| a == "--strict") {
                eprintln!(
                    "--strict: unbaselined entries are an error; \
                     add entries to {baseline_path}"
                );
                std::process::exit(1);
            }
        }
        let regressions = report.regressions(&baseline, max_regress);
        if regressions.is_empty() {
            println!(
                "no entry regressed more than {:.0}% vs {baseline_path}",
                max_regress * 100.0
            );
        } else {
            eprintln!("throughput regression vs {baseline_path}:");
            for msg in &regressions {
                eprintln!("  {msg}");
            }
            std::process::exit(1);
        }
    }
}
