//! Micro-benchmarks of the index functions and the §3.1 hardware models —
//! the software analogue of the paper's "fast hardware" claim: prime
//! indexing must cost no more than a handful of narrow adds.

use primecache_bench::microbench::{black_box, Group};
use primecache_core::hw::{mersenne_fold, IterativeLinear, Polynomial, TlbAssist, Wired2039};
use primecache_core::index::{Geometry, HashKind, PrimeDisplacement, SetIndexer, SkewXorBank};

fn addresses() -> Vec<u64> {
    (0..1024u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9) & 0x03FF_FFFF)
        .collect()
}

fn bench_index_functions() {
    let geom = Geometry::new(2048);
    let addrs = addresses();
    let group = Group::new("indexers");
    for kind in HashKind::ALL {
        let idx = kind.build(geom);
        group.bench(kind.label(), || {
            let mut acc = 0u64;
            for &a in &addrs {
                acc ^= idx.index(black_box(a));
            }
            acc
        });
    }
    let skew = SkewXorBank::new(Geometry::new(512), 2);
    group.bench("SkewXorBank", || {
        let mut acc = 0u64;
        for &a in &addrs {
            acc ^= skew.index(black_box(a));
        }
        acc
    });
    let pd37 = PrimeDisplacement::new(geom, 37);
    group.bench("pDisp(p=37)", || {
        let mut acc = 0u64;
        for &a in &addrs {
            acc ^= pd37.index(black_box(a));
        }
        acc
    });
    group.finish();
}

fn bench_hw_models() {
    let addrs = addresses();
    let group = Group::new("hw_models");
    let poly = Polynomial::new(Geometry::new(2048));
    group.bench("polynomial", || {
        let mut acc = 0u64;
        for &a in &addrs {
            acc ^= poly.reduce(black_box(a));
        }
        acc
    });
    let iter_unit = IterativeLinear::new(Geometry::new(2048), 0);
    group.bench("iterative_linear", || {
        let mut acc = 0u64;
        for &a in &addrs {
            acc ^= iter_unit.reduce(black_box(a));
        }
        acc
    });
    group.bench("wired2039", || {
        let mut acc = 0u64;
        for &a in &addrs {
            acc ^= Wired2039::index(black_box(a));
        }
        acc
    });
    group.bench("mersenne_fold_8191", || {
        let mut acc = 0u64;
        for &a in &addrs {
            acc ^= mersenne_fold(black_box(a), 13);
        }
        acc
    });
    let tlb = TlbAssist::new(2048, 4096, 64);
    group.bench("tlb_assist_full", || {
        let mut acc = 0u64;
        for &a in &addrs {
            acc ^= tlb.index_addr(black_box(a << 6));
        }
        acc
    });
    group.bench("reference_modulo", || {
        let mut acc = 0u64;
        for &a in &addrs {
            acc ^= black_box(a) % 2039;
        }
        acc
    });
    group.finish();
}

fn main() {
    bench_index_functions();
    bench_hw_models();
}
