//! Criterion micro-benchmarks of simulation throughput: accesses per
//! second for each cache organization. These bound the wall-clock of the
//! figure reproductions.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use primecache_cache::{
    Cache, CacheConfig, CacheSim, FullyAssociative, SkewHashKind, SkewedCache, SkewedConfig,
};
use primecache_core::index::HashKind;

const N: u64 = 10_000;

fn addr_stream() -> Vec<u64> {
    (0..N).map(|i| (i.wrapping_mul(0x9E37_79B9) % (1 << 24)) & !63).collect()
}

fn bench_organizations(c: &mut Criterion) {
    let addrs = addr_stream();
    let mut group = c.benchmark_group("cache_access");
    group.throughput(Throughput::Elements(N));
    for kind in HashKind::ALL {
        group.bench_function(format!("set_assoc/{}", kind.label()), |b| {
            let mut cache =
                Cache::new(CacheConfig::new(512 * 1024, 4, 64).with_hash(kind));
            b.iter(|| {
                let mut hits = 0u64;
                for &a in &addrs {
                    hits += u64::from(cache.access(black_box(a), false));
                }
                hits
            })
        });
    }
    for (label, hash) in [
        ("skewed/XOR", SkewHashKind::Xor),
        ("skewed/pDisp", SkewHashKind::PrimeDisplacement),
    ] {
        group.bench_function(label, |b| {
            let mut cache = SkewedCache::new(SkewedConfig::new(512 * 1024, 4, 64, hash));
            b.iter(|| {
                let mut hits = 0u64;
                for &a in &addrs {
                    hits += u64::from(cache.access(black_box(a), false));
                }
                hits
            })
        });
    }
    group.bench_function("fully_associative", |b| {
        let mut cache = FullyAssociative::new(512 * 1024, 64);
        b.iter(|| {
            let mut hits = 0u64;
            for &a in &addrs {
                hits += u64::from(cache.access(black_box(a), false));
            }
            hits
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_organizations
}
criterion_main!(benches);
