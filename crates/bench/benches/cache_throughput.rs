//! Micro-benchmarks of simulation throughput: accesses per second for
//! each cache organization. These bound the wall-clock of the figure
//! reproductions.

use primecache_bench::microbench::{black_box, Group};
use primecache_cache::{
    Cache, CacheConfig, CacheSim, FullyAssociative, SkewHashKind, SkewedCache, SkewedConfig,
};
use primecache_core::index::HashKind;

const N: u64 = 10_000;

fn addr_stream() -> Vec<u64> {
    (0..N)
        .map(|i| (i.wrapping_mul(0x9E37_79B9) % (1 << 24)) & !63)
        .collect()
}

fn bench_organizations() {
    let addrs = addr_stream();
    let mut group = Group::new("cache_access");
    group.throughput = N;
    for kind in HashKind::ALL {
        let mut cache = Cache::new(CacheConfig::new(512 * 1024, 4, 64).with_hash(kind));
        group.bench(&format!("set_assoc/{}", kind.label()), || {
            let mut hits = 0u64;
            for &a in &addrs {
                hits += u64::from(cache.access(black_box(a), false));
            }
            hits
        });
    }
    for (label, hash) in [
        ("skewed/XOR", SkewHashKind::Xor),
        ("skewed/pDisp", SkewHashKind::PrimeDisplacement),
    ] {
        let mut cache = SkewedCache::new(SkewedConfig::new(512 * 1024, 4, 64, hash));
        group.bench(label, || {
            let mut hits = 0u64;
            for &a in &addrs {
                hits += u64::from(cache.access(black_box(a), false));
            }
            hits
        });
    }
    let mut cache = FullyAssociative::new(512 * 1024, 64);
    group.bench("fully_associative", || {
        let mut hits = 0u64;
        for &a in &addrs {
            hits += u64::from(cache.access(black_box(a), false));
        }
        hits
    });
    group.finish();
}

fn main() {
    bench_organizations();
}
