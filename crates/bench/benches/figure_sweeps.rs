//! Benchmarks of the figure-generation pipelines themselves: one balance
//! sweep point (Fig. 5), one concentration point (Fig. 6), and one small
//! end-to-end workload run (Figs. 7-13 building block).

use primecache_bench::microbench::{black_box, Group};
use primecache_core::index::HashKind;
use primecache_sim::experiments::{fig5_balance, fig6_concentration};
use primecache_sim::{run_workload, Scheme};
use primecache_workloads::by_name;

fn bench_metric_sweeps() {
    let group = Group::new("figure_sweeps");
    group.bench("fig5_balance_64_strides", || {
        fig5_balance(black_box(HashKind::PrimeModulo), 64)
    });
    group.bench("fig6_concentration_64_strides", || {
        fig6_concentration(black_box(HashKind::Xor), 64)
    });
    group.finish();
}

fn bench_workload_generation() {
    let group = Group::new("workload_gen");
    for name in ["tree", "bt", "swim", "mcf"] {
        let w = by_name(name).expect("registry");
        group.bench(&format!("{name}_50k_refs"), || w.trace(black_box(50_000)));
    }
    group.finish();
}

fn bench_workload_run() {
    let tree = by_name("tree").expect("registry has tree");
    let mut group = Group::new("workload_run");
    group.samples = 5;
    group.bench("tree_base_20k_refs", || {
        run_workload(black_box(tree), Scheme::Base, 20_000)
    });
    group.bench("tree_pmod_20k_refs", || {
        run_workload(black_box(tree), Scheme::PrimeModulo, 20_000)
    });
    group.finish();
}

fn main() {
    bench_metric_sweeps();
    bench_workload_generation();
    bench_workload_run();
}
