//! Criterion benchmarks of the figure-generation pipelines themselves:
//! one balance sweep point (Fig. 5), one concentration point (Fig. 6),
//! and one small end-to-end workload run (Figs. 7-13 building block).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use primecache_core::index::HashKind;
use primecache_sim::experiments::{fig5_balance, fig6_concentration};
use primecache_sim::{run_workload, Scheme};
use primecache_workloads::by_name;

fn bench_metric_sweeps(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_sweeps");
    group.bench_function("fig5_balance_64_strides", |b| {
        b.iter(|| fig5_balance(black_box(HashKind::PrimeModulo), 64))
    });
    group.bench_function("fig6_concentration_64_strides", |b| {
        b.iter(|| fig6_concentration(black_box(HashKind::Xor), 64))
    });
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_gen");
    for name in ["tree", "bt", "swim", "mcf"] {
        let w = by_name(name).expect("registry");
        group.bench_function(format!("{name}_50k_refs"), |b| {
            b.iter(|| w.trace(black_box(50_000)))
        });
    }
    group.finish();
}

fn bench_workload_run(c: &mut Criterion) {
    let tree = by_name("tree").expect("registry has tree");
    let mut group = c.benchmark_group("workload_run");
    group.sample_size(10);
    group.bench_function("tree_base_20k_refs", |b| {
        b.iter(|| run_workload(black_box(tree), Scheme::Base, 20_000))
    });
    group.bench_function("tree_pmod_20k_refs", |b| {
        b.iter(|| run_workload(black_box(tree), Scheme::PrimeModulo, 20_000))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_metric_sweeps, bench_workload_generation, bench_workload_run
}
criterion_main!(benches);
