//! Trace transforms: relocation and multiprogrammed interleaving.
//!
//! Used by the shared-cache extension study: two applications' traces are
//! relocated to disjoint address regions and interleaved in fixed
//! instruction quanta, modelling two contexts sharing the L2.

use crate::Event;

/// Relocates every memory address in a trace by `delta` bytes (wrapping).
///
/// # Examples
///
/// ```
/// use primecache_trace::{offset_addresses, Event};
///
/// let t = offset_addresses(vec![Event::load(64)], 0x1000);
/// assert_eq!(t[0].addr(), Some(0x1040));
/// ```
#[must_use]
pub fn offset_addresses(events: Vec<Event>, delta: u64) -> Vec<Event> {
    events
        .into_iter()
        .map(|ev| match ev {
            Event::Load { addr, dep } => Event::Load {
                addr: addr.wrapping_add(delta),
                dep,
            },
            Event::Store { addr } => Event::Store {
                addr: addr.wrapping_add(delta),
            },
            other => other,
        })
        .collect()
}

/// Interleaves two traces in round-robin quanta of roughly
/// `quantum_instructions` instructions each — a simple model of two
/// hardware contexts sharing a cache.
///
/// Events are never split; a quantum ends at the first event boundary at
/// or after the quantum size. Leftovers of the longer trace are appended.
///
/// # Panics
///
/// Panics if `quantum_instructions == 0`.
///
/// # Examples
///
/// ```
/// use primecache_trace::{interleave, Event};
///
/// let a = vec![Event::Work(10), Event::load(0)];
/// let b = vec![Event::Work(10), Event::load(4096)];
/// let merged = interleave(a, b, 5);
/// assert_eq!(merged.len(), 4);
/// ```
#[must_use]
pub fn interleave(a: Vec<Event>, b: Vec<Event>, quantum_instructions: u64) -> Vec<Event> {
    assert!(quantum_instructions > 0, "quantum must be positive");
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ia = a.into_iter().peekable();
    let mut ib = b.into_iter().peekable();
    let mut from_a = true;
    while ia.peek().is_some() || ib.peek().is_some() {
        let src = if from_a { &mut ia } else { &mut ib };
        let mut issued = 0u64;
        while issued < quantum_instructions {
            match src.next() {
                Some(ev) => {
                    issued += ev.instructions();
                    out.push(ev);
                }
                None => break,
            }
        }
        from_a = !from_a;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceStats;

    #[test]
    fn offset_preserves_structure() {
        let t = vec![
            Event::Work(3),
            Event::load(100),
            Event::chase(200),
            Event::Store { addr: 300 },
            Event::Branch { mispredict: true },
        ];
        let moved = offset_addresses(t.clone(), 1 << 30);
        assert_eq!(moved.len(), t.len());
        let before: TraceStats = t.iter().collect();
        let after: TraceStats = moved.iter().collect();
        assert_eq!(before, after); // stats are address-independent
        assert_eq!(moved[1].addr(), Some(100 + (1u64 << 30)));
        assert!(matches!(moved[2], Event::Load { dep: true, .. }));
    }

    #[test]
    fn interleave_preserves_every_event() {
        let a: Vec<Event> = (0..100u64).map(Event::load).collect();
        let b: Vec<Event> = (1000..1050u64).map(Event::load).collect();
        let merged = interleave(a.clone(), b.clone(), 7);
        assert_eq!(merged.len(), a.len() + b.len());
        // Per-source order is preserved.
        let from_a: Vec<u64> = merged
            .iter()
            .filter_map(|e| e.addr())
            .filter(|&x| x < 1000)
            .collect();
        assert_eq!(from_a, (0..100u64).collect::<Vec<_>>());
    }

    #[test]
    fn interleave_alternates_in_quanta() {
        let a = vec![Event::Work(5); 8];
        let b = vec![Event::Work(5); 8];
        let merged = interleave(a, b, 10);
        // Quantum 10 = two Work(5) events per turn.
        assert_eq!(merged.len(), 16);
    }

    #[test]
    fn interleave_handles_unbalanced_lengths() {
        let a: Vec<Event> = (0..5u64).map(Event::load).collect();
        let b: Vec<Event> = (100..200u64).map(Event::load).collect();
        let merged = interleave(a, b, 2);
        assert_eq!(merged.len(), 105);
    }

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn zero_quantum_rejected() {
        let _ = interleave(vec![], vec![], 0);
    }
}
