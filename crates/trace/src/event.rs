//! Trace events.

use serde::{Deserialize, Serialize};

/// One event of a trace-driven simulation.
///
/// Memory addresses are byte addresses. A load's `dep` flag marks it as
/// *serializing*: the next event cannot issue until the load's data
/// returns. Pointer-chasing codes (mcf, mst, tree) set it; vectorizable
/// strided codes leave it clear, letting the timing model overlap misses
/// up to its pending-load limit (the machine's MLP).
///
/// # Examples
///
/// ```
/// use primecache_trace::Event;
///
/// let chase = Event::Load { addr: 0x1000, dep: true };
/// assert!(chase.is_memory());
/// assert_eq!(Event::Work(10).instructions(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// `n` non-memory instructions (integer/address mix, issue-width
    /// limited only).
    Work(u32),
    /// `n` floating-point instructions, limited by the FP functional
    /// units (4 per cycle in the paper's Table 3).
    FpWork(u32),
    /// A conditional branch; mispredictions pay the pipeline penalty.
    Branch {
        /// Whether the branch was mispredicted.
        mispredict: bool,
    },
    /// A load from `addr`.
    Load {
        /// Byte address.
        addr: u64,
        /// Serializing (address-dependent) load.
        dep: bool,
    },
    /// A store to `addr`.
    Store {
        /// Byte address.
        addr: u64,
    },
}

impl Event {
    /// Convenience: an independent (overlappable) load.
    #[must_use]
    pub fn load(addr: u64) -> Self {
        Event::Load { addr, dep: false }
    }

    /// Convenience: a serializing (pointer-chase) load.
    #[must_use]
    pub fn chase(addr: u64) -> Self {
        Event::Load { addr, dep: true }
    }

    /// Returns `true` for loads and stores.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        matches!(self, Event::Load { .. } | Event::Store { .. })
    }

    /// The memory address, if this is a memory event.
    #[must_use]
    pub fn addr(&self) -> Option<u64> {
        match self {
            Event::Load { addr, .. } | Event::Store { addr } => Some(*addr),
            _ => None,
        }
    }

    /// Instructions this event represents (memory ops and branches count
    /// as one instruction each).
    #[must_use]
    pub fn instructions(&self) -> u64 {
        match self {
            Event::Work(n) | Event::FpWork(n) => u64::from(*n),
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Event::load(1).is_memory());
        assert!(Event::Store { addr: 2 }.is_memory());
        assert!(!Event::Work(5).is_memory());
        assert!(!Event::Branch { mispredict: true }.is_memory());
    }

    #[test]
    fn addr_extraction() {
        assert_eq!(Event::load(42).addr(), Some(42));
        assert_eq!(Event::Store { addr: 7 }.addr(), Some(7));
        assert_eq!(Event::Work(1).addr(), None);
    }

    #[test]
    fn instruction_counting() {
        assert_eq!(Event::Work(100).instructions(), 100);
        assert_eq!(Event::FpWork(40).instructions(), 40);
        assert_eq!(Event::load(0).instructions(), 1);
        assert_eq!(Event::Branch { mispredict: false }.instructions(), 1);
    }

    #[test]
    fn chase_sets_dep() {
        assert!(matches!(Event::chase(9), Event::Load { dep: true, .. }));
        assert!(matches!(Event::load(9), Event::Load { dep: false, .. }));
    }
}
