//! Synthetic strided trace generation (the §5.1 benchmark).

use crate::Event;

/// Iterator produced by [`strided`] / [`strided_bytes`].
///
/// Emits `Load(i·stride)` events, each followed by `work` non-memory
/// instructions (when `work > 0`), for `count` loads. Every address is
/// distinct, matching the §2.1 premise for the balance/concentration
/// metrics.
#[derive(Debug, Clone)]
pub struct Strided {
    stride: u64,
    count: u64,
    work: u32,
    next_i: u64,
    emit_work: bool,
}

impl Iterator for Strided {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        if self.emit_work {
            self.emit_work = false;
            return Some(Event::Work(self.work));
        }
        if self.next_i >= self.count {
            return None;
        }
        let addr = self.next_i * self.stride;
        self.next_i += 1;
        if self.work > 0 && self.next_i < self.count {
            self.emit_work = true;
        }
        Some(Event::load(addr))
    }
}

/// A strided trace of `count` loads at byte addresses `0, stride, 2·stride,
/// …`, with `work` instructions of compute between consecutive loads.
///
/// # Examples
///
/// ```
/// use primecache_trace::strided;
///
/// let loads = strided(128, 10, 0).filter(|e| e.is_memory()).count();
/// assert_eq!(loads, 10);
/// ```
#[must_use]
pub fn strided(stride: u64, count: u64, work: u32) -> Strided {
    Strided {
        stride,
        count,
        work,
        next_i: 0,
        emit_work: false,
    }
}

/// Like [`strided`], but the stride is given in cache *blocks* of
/// `block_bytes` — the unit Figs. 5/6 sweep (stride 1..2047 blocks).
#[must_use]
pub fn strided_bytes(block_stride: u64, block_bytes: u64, count: u64, work: u32) -> Strided {
    strided(block_stride * block_bytes, count, work)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_are_multiples_of_stride() {
        let addrs: Vec<u64> = strided(96, 5, 0).filter_map(|e| e.addr()).collect();
        assert_eq!(addrs, [0, 96, 192, 288, 384]);
    }

    #[test]
    fn work_interleaves_between_loads() {
        let evs: Vec<Event> = strided(64, 3, 7).collect();
        assert_eq!(
            evs,
            [
                Event::load(0),
                Event::Work(7),
                Event::load(64),
                Event::Work(7),
                Event::load(128),
            ]
        );
    }

    #[test]
    fn zero_work_emits_only_loads() {
        assert!(strided(64, 100, 0).all(|e| e.is_memory()));
    }

    #[test]
    fn empty_trace() {
        assert_eq!(strided(64, 0, 5).count(), 0);
    }

    #[test]
    fn block_strides_scale_by_line_size() {
        let a: Vec<u64> = strided_bytes(3, 64, 4, 0)
            .filter_map(|e| e.addr())
            .collect();
        assert_eq!(a, [0, 192, 384, 576]);
    }
}
