//! Compact binary trace (de)serialization.
//!
//! The format is a stream of tagged records:
//!
//! | tag | record |
//! |---|---|
//! | `0` | `Work(u32 le)` |
//! | `1` | `Branch { mispredict: u8 }` |
//! | `2` | `Load { addr: u64 le, dep: u8 }` |
//! | `3` | `Store { addr: u64 le }` |
//! | `4` | `FpWork(u32 le)` |
//!
//! preceded by the magic `b"PCT1"` and a `u64` event count.

use crate::Event;

const MAGIC: &[u8; 4] = b"PCT1";

/// Minimal byte cursor over a borrowed slice.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Reads the next `N` bytes. Callers must check [`Self::remaining`]
    /// first; panics on overrun.
    fn take<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.pos..self.pos + N]);
        self.pos += N;
        out
    }
}

/// Errors produced when decoding a trace (the flat [`read_trace`] format
/// or the delta/varint-encoded [`crate::encode`] format).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceCodecError {
    /// The magic header was wrong or missing.
    BadMagic,
    /// The stream ended mid-record.
    Truncated,
    /// An unknown record tag was found.
    BadTag(u8),
    /// The frame declares a wire version this decoder does not speak.
    BadVersion(u8),
    /// The byte stream is internally inconsistent (overlong varint,
    /// trailing garbage, a count field that contradicts the payload).
    Corrupt(&'static str),
}

impl std::fmt::Display for TraceCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceCodecError::BadMagic => write!(f, "bad trace magic"),
            TraceCodecError::Truncated => write!(f, "truncated trace stream"),
            TraceCodecError::BadTag(t) => write!(f, "unknown trace record tag {t}"),
            TraceCodecError::BadVersion(v) => write!(f, "unsupported trace wire version {v}"),
            TraceCodecError::Corrupt(what) => write!(f, "corrupt trace stream: {what}"),
        }
    }
}

impl std::error::Error for TraceCodecError {}

/// Encodes events into the binary trace format.
///
/// # Examples
///
/// ```
/// use primecache_trace::{read_trace, write_trace, Event};
///
/// let trace = vec![Event::load(64), Event::Work(3)];
/// let bytes = write_trace(&trace);
/// assert_eq!(read_trace(&bytes).unwrap(), trace);
/// ```
#[must_use]
pub fn write_trace(events: &[Event]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12 + events.len() * 10);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(events.len() as u64).to_le_bytes());
    for ev in events {
        match *ev {
            Event::Work(n) => {
                buf.push(0);
                buf.extend_from_slice(&n.to_le_bytes());
            }
            Event::Branch { mispredict } => {
                buf.push(1);
                buf.push(u8::from(mispredict));
            }
            Event::Load { addr, dep } => {
                buf.push(2);
                buf.extend_from_slice(&addr.to_le_bytes());
                buf.push(u8::from(dep));
            }
            Event::Store { addr } => {
                buf.push(3);
                buf.extend_from_slice(&addr.to_le_bytes());
            }
            Event::FpWork(n) => {
                buf.push(4);
                buf.extend_from_slice(&n.to_le_bytes());
            }
        }
    }
    buf
}

/// Decodes a binary trace produced by [`write_trace`].
///
/// # Errors
///
/// Returns [`TraceCodecError`] on a bad magic, a truncated stream, or an
/// unknown tag.
pub fn read_trace(data: &[u8]) -> Result<Vec<Event>, TraceCodecError> {
    let mut cur = Cursor { data, pos: 0 };
    if cur.remaining() < 12 {
        return Err(TraceCodecError::BadMagic);
    }
    if cur.take::<4>() != *MAGIC {
        return Err(TraceCodecError::BadMagic);
    }
    let count = u64::from_le_bytes(cur.take::<8>()) as usize;
    let data = &mut cur;
    let mut events = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        if data.remaining() < 1 {
            return Err(TraceCodecError::Truncated);
        }
        let tag = data.take::<1>()[0];
        let ev = match tag {
            0 => {
                if data.remaining() < 4 {
                    return Err(TraceCodecError::Truncated);
                }
                Event::Work(u32::from_le_bytes(data.take::<4>()))
            }
            1 => {
                if data.remaining() < 1 {
                    return Err(TraceCodecError::Truncated);
                }
                Event::Branch {
                    mispredict: data.take::<1>()[0] != 0,
                }
            }
            2 => {
                if data.remaining() < 9 {
                    return Err(TraceCodecError::Truncated);
                }
                let addr = u64::from_le_bytes(data.take::<8>());
                let dep = data.take::<1>()[0] != 0;
                Event::Load { addr, dep }
            }
            3 => {
                if data.remaining() < 8 {
                    return Err(TraceCodecError::Truncated);
                }
                Event::Store {
                    addr: u64::from_le_bytes(data.take::<8>()),
                }
            }
            4 => {
                if data.remaining() < 4 {
                    return Err(TraceCodecError::Truncated);
                }
                Event::FpWork(u32::from_le_bytes(data.take::<4>()))
            }
            t => return Err(TraceCodecError::BadTag(t)),
        };
        events.push(ev);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        let trace = vec![
            Event::Work(0),
            Event::Work(u32::MAX),
            Event::FpWork(123),
            Event::Branch { mispredict: true },
            Event::Branch { mispredict: false },
            Event::load(0),
            Event::chase(u64::MAX),
            Event::Store { addr: 0xDEAD_BEEF },
        ];
        let bytes = write_trace(&trace);
        assert_eq!(read_trace(&bytes).unwrap(), trace);
    }

    #[test]
    fn empty_roundtrip() {
        let bytes = write_trace(&[]);
        assert_eq!(read_trace(&bytes).unwrap(), vec![]);
    }

    #[test]
    fn bad_magic_detected() {
        assert_eq!(read_trace(b"XXXX12345678"), Err(TraceCodecError::BadMagic));
        assert_eq!(read_trace(b""), Err(TraceCodecError::BadMagic));
    }

    #[test]
    fn truncation_detected() {
        let bytes = write_trace(&[Event::load(1), Event::load(2)]);
        for cut in 13..bytes.len() {
            let r = read_trace(&bytes[..cut]);
            assert_eq!(r, Err(TraceCodecError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn bad_tag_detected() {
        let mut raw = write_trace(&[Event::Work(1)]).to_vec();
        raw[12] = 99; // first record tag
        assert_eq!(read_trace(&raw), Err(TraceCodecError::BadTag(99)));
    }

    #[test]
    fn large_roundtrip() {
        let trace: Vec<Event> = crate::strided(64, 10_000, 4).collect();
        let bytes = write_trace(&trace);
        assert_eq!(read_trace(&bytes).unwrap(), trace);
    }
}
