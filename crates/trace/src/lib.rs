//! Memory-trace infrastructure: event types, synthetic strided generators,
//! statistics, and a compact binary format.
//!
//! The reproduction is trace-driven: a workload is an iterator of
//! [`Event`]s — non-memory work, branches, loads, stores — consumed by the
//! timing model in `primecache-cpu`. The [`strided`] generator produces the
//! pure strided access patterns of the paper's §5.1 balance/concentration
//! study (Figs. 5 and 6).
//!
//! # Examples
//!
//! ```
//! use primecache_trace::{strided, Event};
//!
//! let mut trace = strided(64, 4, 3);
//! assert!(matches!(trace.next(), Some(Event::Load { addr: 0, .. })));
//! assert!(matches!(trace.next(), Some(Event::Work(3))));
//! assert!(matches!(trace.next(), Some(Event::Load { addr: 64, .. })));
//! ```

pub mod encode;
mod event;
mod gen;
mod io;
mod stats;
mod transforms;

pub use encode::{
    EncodedChunk, EncodedTrace, FrameError, ReplayCursor, TraceEncoder, FRAME_MAGIC, WIRE_VERSION,
};
pub use event::Event;
pub use gen::{strided, strided_bytes, Strided};
pub use io::{read_trace, write_trace, TraceCodecError};
pub use stats::TraceStats;
pub use transforms::{interleave, offset_addresses};
