//! Trace statistics.

use serde::{Deserialize, Serialize};

use crate::Event;

/// Summary statistics of a trace.
///
/// # Examples
///
/// ```
/// use primecache_trace::{Event, TraceStats};
///
/// let stats: TraceStats = [Event::Work(8), Event::load(0), Event::Store { addr: 64 }]
///     .into_iter()
///     .collect();
/// assert_eq!(stats.loads, 1);
/// assert_eq!(stats.instructions, 10);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total instructions (work + fp work + memory ops + branches).
    pub instructions: u64,
    /// Load events.
    pub loads: u64,
    /// Serializing (dependent) loads.
    pub dependent_loads: u64,
    /// Store events.
    pub stores: u64,
    /// Branch events.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
}

impl TraceStats {
    /// Updates the statistics with one event.
    pub fn observe(&mut self, ev: &Event) {
        self.instructions += ev.instructions();
        match ev {
            Event::Load { dep, .. } => {
                self.loads += 1;
                if *dep {
                    self.dependent_loads += 1;
                }
            }
            Event::Store { .. } => self.stores += 1,
            Event::Branch { mispredict } => {
                self.branches += 1;
                if *mispredict {
                    self.mispredicts += 1;
                }
            }
            Event::Work(_) | Event::FpWork(_) => {}
        }
    }

    /// Memory references (loads + stores).
    #[must_use]
    pub fn memory_refs(&self) -> u64 {
        self.loads + self.stores
    }

    /// Fraction of instructions that reference memory.
    #[must_use]
    pub fn memory_intensity(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.memory_refs() as f64 / self.instructions as f64
        }
    }
}

impl<'a> FromIterator<&'a Event> for TraceStats {
    fn from_iter<T: IntoIterator<Item = &'a Event>>(iter: T) -> Self {
        let mut s = TraceStats::default();
        for ev in iter {
            s.observe(ev);
        }
        s
    }
}

impl FromIterator<Event> for TraceStats {
    fn from_iter<T: IntoIterator<Item = Event>>(iter: T) -> Self {
        let mut s = TraceStats::default();
        for ev in iter {
            s.observe(&ev);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_every_kind() {
        let stats: TraceStats = [
            Event::Work(10),
            Event::load(0),
            Event::chase(64),
            Event::Store { addr: 128 },
            Event::Branch { mispredict: true },
            Event::Branch { mispredict: false },
        ]
        .into_iter()
        .collect();
        assert_eq!(stats.instructions, 10 + 5);
        assert_eq!(stats.loads, 2);
        assert_eq!(stats.dependent_loads, 1);
        assert_eq!(stats.stores, 1);
        assert_eq!(stats.branches, 2);
        assert_eq!(stats.mispredicts, 1);
        assert_eq!(stats.memory_refs(), 3);
    }

    #[test]
    fn intensity_of_pure_loads_is_one() {
        let stats: TraceStats = crate::strided(64, 100, 0).collect();
        assert!((stats.memory_intensity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_zeroed() {
        let stats: TraceStats = std::iter::empty::<Event>().collect();
        assert_eq!(stats, TraceStats::default());
        assert_eq!(stats.memory_intensity(), 0.0);
    }
}
