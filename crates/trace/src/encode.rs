//! Compact delta/varint event encoding: the recorded-trace wire format.
//!
//! An in-memory [`Event`] is 16 bytes; a suite-size trace at hundreds of
//! millions of references would not fit a trace store. This module packs
//! an event stream into independently decodable [`EncodedChunk`]s at a
//! few bytes per event, so a sweep can generate each workload **once**
//! and replay the recording for every scheme ([`ReplayCursor`]), and so
//! external traces can eventually be imported through the same framing
//! ([`EncodedTrace::to_bytes`] / [`EncodedTrace::from_bytes`]).
//!
//! # Wire layout (version 1)
//!
//! Every event starts with one tag byte:
//!
//! ```text
//! bit 7 6 5 4 | 3    | 2 1 0
//!     payload | flag | kind
//! ```
//!
//! `kind` is `0` Work, `1` FpWork, `2` Branch, `3` Load, `4` Store
//! (`5..=7` are invalid). `flag` carries `Load::dep` / `Branch::mispredict`
//! and must be zero for the other kinds. The 4-bit `payload` nibble is
//! kind-specific:
//!
//! * **Work/FpWork** — instruction counts `0..=14` are stored inline in
//!   the nibble; `15` escapes to a LEB128 varint of the full count.
//! * **Branch** — the nibble must be zero; the tag byte is the whole event.
//! * **Load/Store** — addresses are delta-coded: with `delta =
//!   addr.wrapping_sub(prev_addr)` (`prev_addr` = the previous memory
//!   event's address, starting from the chunk's `base_addr`) and `z =
//!   zigzag(delta)`, the nibble holds the low 4 bits of `z` and a varint
//!   of `z >> 4` follows. Wrapping arithmetic makes the delta lossless
//!   for *any* pair of `u64` addresses.
//!
//! Varints are LEB128: little-endian 7-bit groups, high bit = continue.
//! A strided access pattern (delta fits 11 bits zigzagged) costs 2 bytes
//! per memory event; compute and branch events cost 1. The
//! `encoded_chunks_stay_compact` test pins the ≲5 bytes/event target on
//! real workload traffic.
//!
//! Chunks are self-contained: each records the `prev_addr` context at
//! its start (`base_addr`), so a chunk decodes without touching its
//! predecessors and replay hands out one decoded chunk at a time —
//! exactly the shape the batched simulation drivers consume.

use crate::io::TraceCodecError;
use crate::Event;

/// Version byte written into [`EncodedTrace::to_bytes`] frames.
pub const WIRE_VERSION: u8 = 1;

/// Magic prefix of a serialized [`EncodedTrace`] frame ("prime cache
/// trace, encoded"); the flat legacy format uses `PCT1`.
pub const FRAME_MAGIC: &[u8; 4] = b"PCTE";

const KIND_WORK: u8 = 0;
const KIND_FP_WORK: u8 = 1;
const KIND_BRANCH: u8 = 2;
const KIND_LOAD: u8 = 3;
const KIND_STORE: u8 = 4;
const KIND_MASK: u8 = 0x07;
const FLAG_BIT: u8 = 0x08;
/// Work/FpWork nibble value that escapes to a full varint count.
const INLINE_ESCAPE: u8 = 15;

/// Appends `v` as a LEB128 varint (7 bits per byte, low group first,
/// high bit set on every byte but the last; at most 10 bytes).
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint starting at `*pos`, advancing `*pos` past it.
///
/// # Errors
///
/// [`TraceCodecError::Truncated`] when the buffer ends mid-varint;
/// [`TraceCodecError::Corrupt`] when the encoding overflows 64 bits.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, TraceCodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos).ok_or(TraceCodecError::Truncated)?;
        *pos += 1;
        let group = u64::from(byte & 0x7F);
        // The 10th byte may only contribute the top bit of a u64.
        if shift == 63 && group > 1 || shift > 63 {
            return Err(TraceCodecError::Corrupt("varint overflows 64 bits"));
        }
        v |= group << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zigzag-maps a signed delta to an unsigned varint-friendly value:
/// small magnitudes of either sign become small codes.
#[must_use]
pub fn zigzag(delta: i64) -> u64 {
    ((delta << 1) ^ (delta >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[must_use]
#[allow(clippy::cast_possible_wrap)]
pub fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Encodes one event, updating the address-delta context.
#[allow(clippy::cast_possible_truncation)]
fn encode_event(buf: &mut Vec<u8>, prev_addr: &mut u64, ev: Event) {
    let addr_event = |buf: &mut Vec<u8>, prev: &mut u64, kind: u8, flag: u8, addr: u64| {
        let z = zigzag(addr.wrapping_sub(*prev) as i64);
        buf.push(kind | flag | (((z & 0xF) as u8) << 4));
        write_varint(buf, z >> 4);
        *prev = addr;
    };
    match ev {
        Event::Work(n) | Event::FpWork(n) => {
            let kind = if matches!(ev, Event::Work(_)) {
                KIND_WORK
            } else {
                KIND_FP_WORK
            };
            if n < u32::from(INLINE_ESCAPE) {
                buf.push(kind | ((n as u8) << 4));
            } else {
                buf.push(kind | (INLINE_ESCAPE << 4));
                write_varint(buf, u64::from(n));
            }
        }
        Event::Branch { mispredict } => {
            buf.push(KIND_BRANCH | if mispredict { FLAG_BIT } else { 0 });
        }
        Event::Load { addr, dep } => {
            addr_event(
                buf,
                prev_addr,
                KIND_LOAD,
                if dep { FLAG_BIT } else { 0 },
                addr,
            );
        }
        Event::Store { addr } => addr_event(buf, prev_addr, KIND_STORE, 0, addr),
    }
}

/// Decodes one event starting at `*pos`, updating the delta context.
#[allow(clippy::cast_possible_truncation)]
fn decode_event(
    bytes: &[u8],
    pos: &mut usize,
    prev_addr: &mut u64,
) -> Result<Event, TraceCodecError> {
    let &tag = bytes.get(*pos).ok_or(TraceCodecError::Truncated)?;
    *pos += 1;
    let kind = tag & KIND_MASK;
    let flag = tag & FLAG_BIT != 0;
    let nibble = tag >> 4;
    let read_count = |pos: &mut usize| -> Result<u32, TraceCodecError> {
        if nibble < INLINE_ESCAPE {
            return Ok(u32::from(nibble));
        }
        let n = read_varint(bytes, pos)?;
        u32::try_from(n).map_err(|_| TraceCodecError::Corrupt("work count exceeds u32"))
    };
    let read_addr = |pos: &mut usize, prev: &mut u64| -> Result<u64, TraceCodecError> {
        let hi = read_varint(bytes, pos)?;
        if hi >> 60 != 0 {
            return Err(TraceCodecError::Corrupt("address delta overflows 64 bits"));
        }
        let z = (hi << 4) | u64::from(nibble);
        let addr = prev.wrapping_add(unzigzag(z) as u64);
        *prev = addr;
        Ok(addr)
    };
    match kind {
        KIND_WORK | KIND_FP_WORK if flag => Err(TraceCodecError::BadTag(tag)),
        KIND_WORK => Ok(Event::Work(read_count(pos)?)),
        KIND_FP_WORK => Ok(Event::FpWork(read_count(pos)?)),
        KIND_BRANCH if nibble != 0 => Err(TraceCodecError::BadTag(tag)),
        KIND_BRANCH => Ok(Event::Branch { mispredict: flag }),
        KIND_LOAD => {
            let addr = read_addr(pos, prev_addr)?;
            Ok(Event::Load { addr, dep: flag })
        }
        KIND_STORE if flag => Err(TraceCodecError::BadTag(tag)),
        KIND_STORE => Ok(Event::Store {
            addr: read_addr(pos, prev_addr)?,
        }),
        _ => Err(TraceCodecError::BadTag(tag)),
    }
}

/// One independently decodable span of encoded events.
///
/// `base_addr` is the delta context (the previous memory event's
/// address, or 0 at trace start) in force when the chunk began, so
/// decoding never needs the preceding chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedChunk {
    events: u32,
    base_addr: u64,
    bytes: Vec<u8>,
}

impl EncodedChunk {
    /// Number of events in the chunk.
    #[must_use]
    pub fn events(&self) -> usize {
        self.events as usize
    }

    /// Encoded payload size in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        self.bytes.len()
    }

    /// The address-delta context at the start of the chunk.
    #[must_use]
    pub fn base_addr(&self) -> u64 {
        self.base_addr
    }

    /// Decodes the chunk back into events.
    ///
    /// # Errors
    ///
    /// Returns [`TraceCodecError`] when the payload is truncated, carries
    /// an invalid tag or varint, or does not end exactly at the declared
    /// event count.
    pub fn decode(&self) -> Result<Vec<Event>, TraceCodecError> {
        self.decode_at().map_err(|(_, e)| e)
    }

    /// [`EncodedChunk::decode`] with the payload offset at which decoding
    /// failed (the start of the offending event, or the end of the last
    /// event on trailing garbage).
    fn decode_at(&self) -> Result<Vec<Event>, (usize, TraceCodecError)> {
        let mut out = Vec::with_capacity(self.events as usize);
        let mut prev = self.base_addr;
        let mut pos = 0usize;
        for _ in 0..self.events {
            let at = pos;
            out.push(decode_event(&self.bytes, &mut pos, &mut prev).map_err(|e| (at, e))?);
        }
        if pos != self.bytes.len() {
            return Err((
                pos,
                TraceCodecError::Corrupt("trailing bytes after last event"),
            ));
        }
        Ok(out)
    }
}

/// A frame-decoding failure located at a byte offset.
///
/// [`EncodedTrace::from_bytes_diagnose`] returns this instead of a bare
/// [`TraceCodecError`] so importers can point at the exact offending byte
/// of an external file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    /// Byte offset into the frame where decoding failed: the start of
    /// the field (or encoded event) that could not be read.
    pub offset: usize,
    /// What went wrong there.
    pub error: TraceCodecError,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "byte offset {}: {}", self.offset, self.error)
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Streaming encoder: push events, get an [`EncodedTrace`] of
/// `chunk_events`-sized [`EncodedChunk`]s back.
///
/// This is the same-thread pull-mode recording path: no generator
/// thread, no channel — a `TraceSink` in recording mode feeds events
/// straight into this encoder.
#[derive(Debug)]
pub struct TraceEncoder {
    chunk_events: usize,
    chunks: Vec<EncodedChunk>,
    buf: Vec<u8>,
    in_chunk: u32,
    chunk_base: u64,
    prev_addr: u64,
    events: u64,
    refs: u64,
}

impl TraceEncoder {
    /// Creates an encoder cutting chunks every `chunk_events` events.
    ///
    /// # Panics
    ///
    /// Panics when `chunk_events` is zero or exceeds `u32::MAX`.
    #[must_use]
    pub fn new(chunk_events: usize) -> Self {
        assert!(chunk_events > 0, "chunk_events must be positive");
        assert!(
            u32::try_from(chunk_events).is_ok(),
            "chunk_events must fit u32"
        );
        Self {
            chunk_events,
            chunks: Vec::new(),
            buf: Vec::with_capacity(chunk_events * 3),
            in_chunk: 0,
            chunk_base: 0,
            prev_addr: 0,
            events: 0,
            refs: 0,
        }
    }

    /// Appends one event.
    #[inline]
    pub fn push(&mut self, ev: Event) {
        encode_event(&mut self.buf, &mut self.prev_addr, ev);
        if ev.is_memory() {
            self.refs += 1;
        }
        self.events += 1;
        self.in_chunk += 1;
        if self.in_chunk as usize == self.chunk_events {
            self.flush_chunk();
        }
    }

    fn flush_chunk(&mut self) {
        if self.in_chunk == 0 {
            return;
        }
        let cap = self.buf.capacity();
        self.chunks.push(EncodedChunk {
            events: self.in_chunk,
            base_addr: self.chunk_base,
            bytes: std::mem::replace(&mut self.buf, Vec::with_capacity(cap)),
        });
        self.in_chunk = 0;
        self.chunk_base = self.prev_addr;
    }

    /// Seals the trace, flushing any partially filled final chunk.
    #[must_use]
    pub fn finish(mut self) -> EncodedTrace {
        self.flush_chunk();
        EncodedTrace {
            chunks: self.chunks,
            events: self.events,
            refs: self.refs,
            chunk_events: self.chunk_events,
        }
    }
}

/// A complete recorded trace: encoded chunks plus totals.
///
/// Replay never re-decodes from the start: [`EncodedTrace::replay`]
/// hands out a borrowing cursor that decodes one chunk at a time, so any
/// number of simultaneous replays share the single encoded copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedTrace {
    chunks: Vec<EncodedChunk>,
    events: u64,
    refs: u64,
    chunk_events: usize,
}

impl EncodedTrace {
    /// Encodes a materialized event slice (tests, importers). The
    /// recording hot path streams through [`TraceEncoder`] instead.
    #[must_use]
    pub fn encode(events: &[Event], chunk_events: usize) -> Self {
        let mut enc = TraceEncoder::new(chunk_events);
        for &ev in events {
            enc.push(ev);
        }
        enc.finish()
    }

    /// Total events recorded.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Memory references (loads + stores) recorded.
    #[must_use]
    pub fn refs(&self) -> u64 {
        self.refs
    }

    /// The encoder's chunk size (events per full chunk).
    #[must_use]
    pub fn chunk_events(&self) -> usize {
        self.chunk_events
    }

    /// The encoded chunks.
    #[must_use]
    pub fn chunks(&self) -> &[EncodedChunk] {
        &self.chunks
    }

    /// Total encoded payload bytes across all chunks.
    #[must_use]
    pub fn encoded_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.bytes.len() as u64).sum()
    }

    /// Mean encoded bytes per event (the ≲5 B/event compactness metric).
    #[must_use]
    pub fn bytes_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.encoded_bytes() as f64 / self.events as f64
        }
    }

    /// A zero-copy replay cursor over the encoded chunks.
    #[must_use]
    pub fn replay(&self) -> ReplayCursor<'_> {
        ReplayCursor {
            chunks: self.chunks.iter(),
            current: Vec::new().into_iter(),
            chunks_read: 0,
            chunk_events: self.chunk_events,
        }
    }

    /// Decodes the whole trace into one `Vec` (tests, importers).
    ///
    /// # Errors
    ///
    /// Returns the first chunk's [`TraceCodecError`], if any.
    pub fn decode_all(&self) -> Result<Vec<Event>, TraceCodecError> {
        let mut out = Vec::with_capacity(self.events as usize);
        for c in &self.chunks {
            out.extend(c.decode()?);
        }
        Ok(out)
    }

    /// Serializes the trace with the on-disk framing:
    ///
    /// ```text
    /// "PCTE" | version u8 | 3 reserved zero bytes
    /// events u64 le | refs u64 le | chunk_events u32 le | chunk count u32 le
    /// then per chunk: events u32 le | base_addr u64 le | len u32 le | payload
    /// ```
    ///
    /// This framing is the contract the `primecache-ingest` importer and
    /// `pcache import` consume; TRACE_FORMAT.md is the normative
    /// description.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(32 + self.encoded_bytes() as usize + self.chunks.len() * 16);
        out.extend_from_slice(FRAME_MAGIC);
        out.push(WIRE_VERSION);
        out.extend_from_slice(&[0u8; 3]);
        out.extend_from_slice(&self.events.to_le_bytes());
        out.extend_from_slice(&self.refs.to_le_bytes());
        out.extend_from_slice(&(self.chunk_events as u32).to_le_bytes());
        out.extend_from_slice(&(self.chunks.len() as u32).to_le_bytes());
        for c in &self.chunks {
            out.extend_from_slice(&c.events.to_le_bytes());
            out.extend_from_slice(&c.base_addr.to_le_bytes());
            out.extend_from_slice(&(c.bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&c.bytes);
        }
        out
    }

    /// Deserializes and *fully validates* a frame written by
    /// [`EncodedTrace::to_bytes`]: every chunk is decoded once, so a
    /// trace accepted here can never fail during replay.
    ///
    /// # Errors
    ///
    /// Returns [`TraceCodecError`] on a bad magic or version, truncation,
    /// trailing bytes, totals that contradict the chunks, or any invalid
    /// chunk payload.
    pub fn from_bytes(data: &[u8]) -> Result<Self, TraceCodecError> {
        Self::from_bytes_diagnose(data).map_err(|e| e.error)
    }

    /// [`EncodedTrace::from_bytes`] with byte-offset error reporting: a
    /// failure carries the offset of the header field, chunk header, or
    /// encoded event that could not be decoded. This is what `pcache
    /// import` prints for a corrupt `PCTE` file.
    ///
    /// # Errors
    ///
    /// The same rejections as [`EncodedTrace::from_bytes`], as
    /// [`FrameError`]s.
    pub fn from_bytes_diagnose(data: &[u8]) -> Result<Self, FrameError> {
        let at = |offset: usize, error: TraceCodecError| FrameError { offset, error };
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], FrameError> {
            let s = data
                .get(*pos..*pos + n)
                .ok_or(at(*pos, TraceCodecError::Truncated))?;
            *pos += n;
            Ok(s)
        };
        if data.len() < 4 || &data[..4] != FRAME_MAGIC {
            return Err(at(0, TraceCodecError::BadMagic));
        }
        let mut pos = 4usize;
        let version = take(&mut pos, 1)?[0];
        if version != WIRE_VERSION {
            return Err(at(4, TraceCodecError::BadVersion(version)));
        }
        if take(&mut pos, 3)? != [0u8; 3] {
            return Err(at(
                5,
                TraceCodecError::Corrupt("nonzero reserved header bytes"),
            ));
        }
        let le64 = |s: &[u8]| u64::from_le_bytes(s.try_into().expect("8-byte slice"));
        let le32 = |s: &[u8]| u32::from_le_bytes(s.try_into().expect("4-byte slice"));
        let events = le64(take(&mut pos, 8)?);
        let refs = le64(take(&mut pos, 8)?);
        let chunk_events_at = pos;
        let chunk_events = le32(take(&mut pos, 4)?) as usize;
        let n_chunks = le32(take(&mut pos, 4)?) as usize;
        if chunk_events == 0 {
            return Err(at(
                chunk_events_at,
                TraceCodecError::Corrupt("zero chunk_events"),
            ));
        }
        let mut chunks = Vec::with_capacity(n_chunks.min(1 << 20));
        let (mut seen_events, mut seen_refs) = (0u64, 0u64);
        for _ in 0..n_chunks {
            let c_events = le32(take(&mut pos, 4)?);
            let base_addr = le64(take(&mut pos, 8)?);
            let len = le32(take(&mut pos, 4)?) as usize;
            let payload_at = pos;
            let bytes = take(&mut pos, len)?.to_vec();
            let chunk = EncodedChunk {
                events: c_events,
                base_addr,
                bytes,
            };
            // Validate up front: decode once, count the memory refs.
            let decoded = chunk
                .decode_at()
                .map_err(|(off, e)| at(payload_at + off, e))?;
            seen_refs += decoded.iter().filter(|e| e.is_memory()).count() as u64;
            seen_events += u64::from(c_events);
            chunks.push(chunk);
        }
        if pos != data.len() {
            return Err(at(
                pos,
                TraceCodecError::Corrupt("trailing bytes after last chunk"),
            ));
        }
        if seen_events != events {
            return Err(at(
                8,
                TraceCodecError::Corrupt("event count contradicts chunks"),
            ));
        }
        if seen_refs != refs {
            return Err(at(
                16,
                TraceCodecError::Corrupt("ref count contradicts chunks"),
            ));
        }
        Ok(Self {
            chunks,
            events,
            refs,
            chunk_events,
        })
    }

    /// A 64-bit FNV-1a fingerprint of the serialized frame — exactly the
    /// hash of the [`EncodedTrace::to_bytes`] output, computed without
    /// materializing it. Two traces fingerprint equal iff their framed
    /// bytes are equal (same events *and* same chunk cadence), so this is
    /// the cheap bit-exactness check `pcache import`, `pcache inspect`,
    /// and `ci/ingest_smoke.sh` compare.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)]
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut feed = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
        };
        feed(FRAME_MAGIC);
        feed(&[WIRE_VERSION, 0, 0, 0]);
        feed(&self.events.to_le_bytes());
        feed(&self.refs.to_le_bytes());
        feed(&(self.chunk_events as u32).to_le_bytes());
        feed(&(self.chunks.len() as u32).to_le_bytes());
        for c in &self.chunks {
            feed(&c.events.to_le_bytes());
            feed(&c.base_addr.to_le_bytes());
            feed(&(c.bytes.len() as u32).to_le_bytes());
            feed(&c.bytes);
        }
        h
    }
}

/// Iterator/chunk cursor over a borrowed [`EncodedTrace`].
///
/// Replay is read-only: any number of cursors can replay the same
/// recording concurrently, each decoding one chunk at a time (peak
/// decoded memory is one chunk, as in the live streaming path).
///
/// `next_chunk` is remainder-first like
/// `primecache_workloads::EventStream::next_chunk`: interleaving item
/// and chunk pulls still yields the recorded sequence exactly once.
#[derive(Debug)]
pub struct ReplayCursor<'a> {
    chunks: std::slice::Iter<'a, EncodedChunk>,
    current: std::vec::IntoIter<Event>,
    chunks_read: u64,
    chunk_events: usize,
}

impl ReplayCursor<'_> {
    /// Decodes and returns the next whole chunk of events (the remainder
    /// of a partially iterated chunk first), or `None` at end of trace.
    pub fn next_chunk(&mut self) -> Option<Vec<Event>> {
        if self.current.len() > 0 {
            let rest: Vec<Event> =
                std::mem::replace(&mut self.current, Vec::new().into_iter()).collect();
            return Some(rest);
        }
        self.decode_next()
    }

    fn decode_next(&mut self) -> Option<Vec<Event>> {
        let chunk = self.chunks.next()?;
        self.chunks_read += 1;
        // Traces only exist validated: the encoder produced these bytes,
        // or `from_bytes` already decoded them once.
        Some(chunk.decode().expect("validated chunk decodes"))
    }

    /// Replay-side mirror of `EventStream::stream_stats`: `(chunks
    /// decoded, blocked_waits)`. A replay never waits on a generator, so
    /// `blocked_waits` is always 0 — the signature a store-served run
    /// leaves in the obs metrics.
    #[must_use]
    pub fn stream_stats(&self) -> (u64, u64) {
        (self.chunks_read, 0)
    }

    /// Replay-side mirror of `EventStream::stream_config`: `(0,
    /// chunk_events)` — a replay has no channel, so its depth is 0.
    #[must_use]
    pub fn stream_config(&self) -> (usize, usize) {
        (0, self.chunk_events)
    }
}

impl Iterator for ReplayCursor<'_> {
    type Item = Event;

    #[inline]
    fn next(&mut self) -> Option<Event> {
        loop {
            if let Some(ev) = self.current.next() {
                return Some(ev);
            }
            self.current = self.decode_next()?.into_iter();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_events() -> Vec<Event> {
        vec![
            Event::Work(0),
            Event::Work(14),
            Event::Work(15),
            Event::Work(u32::MAX),
            Event::FpWork(7),
            Event::FpWork(40_000),
            Event::Branch { mispredict: false },
            Event::Branch { mispredict: true },
            Event::load(0),
            Event::load(64),
            Event::chase(u64::MAX),
            Event::Store { addr: 0 },
            Event::Store { addr: 0xDEAD_BEEF },
            Event::load(1),
        ]
    }

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [
            0,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert!(buf.len() <= 10);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Ok(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 continuation bytes: too many bits for a u64.
        let buf = [0x80u8, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x7F];
        let mut pos = 0;
        assert_eq!(
            read_varint(&buf, &mut pos),
            Err(TraceCodecError::Corrupt("varint overflows 64 bits"))
        );
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for d in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(d)), d, "{d}");
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn all_event_variants_round_trip() {
        let events = mixed_events();
        for chunk_events in [1usize, 3, 16, 1024] {
            let trace = EncodedTrace::encode(&events, chunk_events);
            assert_eq!(trace.decode_all().unwrap(), events, "chunk={chunk_events}");
            assert_eq!(trace.events(), events.len() as u64);
            assert_eq!(
                trace.refs(),
                events.iter().filter(|e| e.is_memory()).count() as u64
            );
        }
    }

    #[test]
    fn replay_cursor_matches_decode_all() {
        let events = mixed_events();
        let trace = EncodedTrace::encode(&events, 4);
        let replayed: Vec<Event> = trace.replay().collect();
        assert_eq!(replayed, events);
        let mut chunked = Vec::new();
        let mut cur = trace.replay();
        while let Some(c) = cur.next_chunk() {
            assert!(c.len() <= 4);
            chunked.extend(c);
        }
        assert_eq!(chunked, events);
        assert_eq!(cur.stream_stats(), (trace.chunks().len() as u64, 0));
    }

    #[test]
    fn interleaved_item_and_chunk_pulls_preserve_order() {
        let events: Vec<Event> = (0..100u64).map(|i| Event::load(i * 64)).collect();
        let trace = EncodedTrace::encode(&events, 16);
        let mut cur = trace.replay();
        let mut got = Vec::new();
        for _ in 0..7 {
            got.push(cur.next().unwrap());
        }
        got.extend(cur.next_chunk().unwrap()); // remainder of chunk 1
        got.push(cur.next().unwrap());
        while let Some(c) = cur.next_chunk() {
            got.extend(c);
        }
        assert_eq!(got, events);
    }

    #[test]
    fn chunks_decode_independently() {
        // Decoding chunk k alone must not need chunks 0..k.
        let events: Vec<Event> = (0..50u64)
            .map(|i| Event::load(i.wrapping_mul(0x9E37_79B9) << 6))
            .collect();
        let trace = EncodedTrace::encode(&events, 8);
        let mut all = Vec::new();
        for c in trace.chunks().iter().rev() {
            let mut decoded = c.decode().unwrap();
            decoded.extend(all);
            all = decoded;
        }
        assert_eq!(all, events);
    }

    #[test]
    fn max_magnitude_address_jumps_round_trip() {
        let events = vec![
            Event::load(0),
            Event::load(u64::MAX),
            Event::load(0),
            Event::load(1 << 63),
            Event::Store {
                addr: (1 << 63) - 1,
            },
            Event::load(u64::MAX / 3),
        ];
        let trace = EncodedTrace::encode(&events, 2);
        assert_eq!(trace.decode_all().unwrap(), events);
    }

    #[test]
    fn strided_traffic_stays_compact() {
        // Strided loads with small work events: the dominant trace shape.
        let mut events = Vec::new();
        for i in 0..10_000u64 {
            events.push(Event::load(i * 64));
            events.push(Event::Work(3));
        }
        let trace = EncodedTrace::encode(&events, 4096);
        assert!(
            trace.bytes_per_event() < 2.0,
            "{} B/event",
            trace.bytes_per_event()
        );
    }

    #[test]
    fn frame_round_trips() {
        let events = mixed_events();
        let trace = EncodedTrace::encode(&events, 4);
        let bytes = trace.to_bytes();
        let back = EncodedTrace::from_bytes(&bytes).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.decode_all().unwrap(), events);
    }

    #[test]
    fn empty_trace_frame_round_trips() {
        let trace = EncodedTrace::encode(&[], 16);
        assert_eq!(trace.events(), 0);
        assert_eq!(trace.replay().count(), 0);
        let back = EncodedTrace::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn frame_rejects_bad_magic_and_version() {
        let trace = EncodedTrace::encode(&mixed_events(), 4);
        let mut bytes = trace.to_bytes();
        assert_eq!(
            EncodedTrace::from_bytes(b"PCT1"),
            Err(TraceCodecError::BadMagic)
        );
        bytes[4] = 9;
        assert_eq!(
            EncodedTrace::from_bytes(&bytes),
            Err(TraceCodecError::BadVersion(9))
        );
    }

    #[test]
    fn frame_rejects_truncation_everywhere() {
        let trace = EncodedTrace::encode(&mixed_events(), 4);
        let bytes = trace.to_bytes();
        for cut in 4..bytes.len() {
            let err = EncodedTrace::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    TraceCodecError::Truncated | TraceCodecError::Corrupt(_)
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn frame_rejects_trailing_garbage_and_count_lies() {
        let trace = EncodedTrace::encode(&mixed_events(), 4);
        let mut bytes = trace.to_bytes();
        bytes.push(0);
        assert_eq!(
            EncodedTrace::from_bytes(&bytes),
            Err(TraceCodecError::Corrupt("trailing bytes after last chunk"))
        );
        let mut lied = trace.to_bytes();
        lied[8] ^= 1; // flip a bit of the total event count
        assert_eq!(
            EncodedTrace::from_bytes(&lied),
            Err(TraceCodecError::Corrupt("event count contradicts chunks"))
        );
    }

    #[test]
    fn corrupt_chunk_payload_rejected_at_frame_load() {
        let trace = EncodedTrace::encode(&[Event::Work(3), Event::load(64)], 16);
        let mut bytes = trace.to_bytes();
        let payload_at = bytes.len() - trace.encoded_bytes() as usize;
        bytes[payload_at] = 0x07; // invalid kind 7
        assert!(matches!(
            EncodedTrace::from_bytes(&bytes),
            Err(TraceCodecError::BadTag(_) | TraceCodecError::Corrupt(_))
        ));
    }

    #[test]
    fn decode_rejects_flag_on_flagless_kinds() {
        // Store with the flag bit set is non-canonical and must not
        // silently alias another event.
        let chunk = EncodedChunk {
            events: 1,
            base_addr: 0,
            bytes: vec![KIND_STORE | FLAG_BIT, 0x00],
        };
        assert_eq!(
            chunk.decode(),
            Err(TraceCodecError::BadTag(KIND_STORE | FLAG_BIT))
        );
    }

    #[test]
    fn fingerprint_hashes_the_framed_bytes() {
        let trace = EncodedTrace::encode(&mixed_events(), 4);
        // Reference: FNV-1a over the materialized frame.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in &trace.to_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        assert_eq!(trace.fingerprint(), h);
        // Same events, different chunk cadence → different frame bytes.
        let rechunked = EncodedTrace::encode(&mixed_events(), 5);
        assert_ne!(trace.fingerprint(), rechunked.fingerprint());
        // A frame round trip preserves the fingerprint.
        let back = EncodedTrace::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(back.fingerprint(), trace.fingerprint());
    }

    #[test]
    fn diagnose_reports_the_failing_offset() {
        let trace = EncodedTrace::encode(&mixed_events(), 4);
        let bytes = trace.to_bytes();

        // Truncation: the reported offset is where the missing field
        // began, which is always within the truncated prefix.
        for cut in 4..bytes.len() {
            let err = EncodedTrace::from_bytes_diagnose(&bytes[..cut]).unwrap_err();
            assert!(err.offset <= cut, "cut {cut}: offset {}", err.offset);
        }

        // Bad version sits at byte 4.
        let mut v = bytes.clone();
        v[4] = 9;
        let err = EncodedTrace::from_bytes_diagnose(&v).unwrap_err();
        assert_eq!((err.offset, err.error), (4, TraceCodecError::BadVersion(9)));

        // A corrupt event tag is located exactly: first chunk's payload
        // starts after the 32-byte header and a 16-byte chunk header.
        let mut c = bytes.clone();
        c[48] = 0x07; // invalid kind 7 on the first encoded event
        let err = EncodedTrace::from_bytes_diagnose(&c).unwrap_err();
        assert_eq!(err.offset, 48, "{err}");
        assert_eq!(err.error, TraceCodecError::BadTag(0x07));

        // Display carries the offset for human-facing importer messages.
        assert!(err.to_string().contains("byte offset 48"));
    }

    #[test]
    fn diagnose_matches_from_bytes_verdict() {
        let trace = EncodedTrace::encode(&mixed_events(), 4);
        let mut bytes = trace.to_bytes();
        bytes.push(0xAA);
        assert_eq!(
            EncodedTrace::from_bytes(&bytes).unwrap_err(),
            EncodedTrace::from_bytes_diagnose(&bytes).unwrap_err().error
        );
        assert_eq!(
            EncodedTrace::from_bytes_diagnose(&trace.to_bytes()).unwrap(),
            trace
        );
    }
}
