//! Property-based tests of the trace codec and generators.

use primecache_trace::{read_trace, strided, write_trace, Event, TraceStats};
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        any::<u32>().prop_map(Event::Work),
        any::<u32>().prop_map(Event::FpWork),
        any::<bool>().prop_map(|mispredict| Event::Branch { mispredict }),
        (any::<u64>(), any::<bool>()).prop_map(|(addr, dep)| Event::Load { addr, dep }),
        any::<u64>().prop_map(|addr| Event::Store { addr }),
    ]
}

proptest! {
    #[test]
    fn codec_roundtrips(events in prop::collection::vec(arb_event(), 0..500)) {
        let bytes = write_trace(&events);
        prop_assert_eq!(read_trace(&bytes).unwrap(), events);
    }

    #[test]
    fn truncated_streams_never_panic(
        events in prop::collection::vec(arb_event(), 1..50),
        cut_fraction in 0.0f64..1.0,
    ) {
        let bytes = write_trace(&events);
        let cut = (bytes.len() as f64 * cut_fraction) as usize;
        // Must return an error or a (possibly shorter-declared) trace,
        // never panic.
        let _ = read_trace(&bytes[..cut]);
    }

    #[test]
    fn corrupted_bytes_never_panic(
        events in prop::collection::vec(arb_event(), 1..50),
        pos_seed: u64,
        value: u8,
    ) {
        let mut bytes = write_trace(&events).to_vec();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] = value;
        let _ = read_trace(&bytes);
    }

    #[test]
    fn strided_generator_counts_add_up(stride in 1u64..10_000, count in 0u64..2_000, work in 0u32..50) {
        let stats: TraceStats = strided(stride, count, work).collect();
        prop_assert_eq!(stats.loads, count);
        prop_assert_eq!(stats.stores, 0);
        let expected_work = if work > 0 && count > 1 {
            u64::from(work) * (count - 1)
        } else {
            0
        };
        prop_assert_eq!(stats.instructions, count + expected_work);
    }

    #[test]
    fn strided_addresses_are_unique(stride in 1u64..100_000, count in 1u64..2_000) {
        let addrs: Vec<u64> = strided(stride, count, 0).filter_map(|e| e.addr()).collect();
        let set: std::collections::HashSet<u64> = addrs.iter().copied().collect();
        prop_assert_eq!(set.len() as u64, count);
    }
}
