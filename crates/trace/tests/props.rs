//! Property-based tests of the trace codec and generators.

use primecache_check::prop::{forall, Rng, Shrink};
use primecache_trace::{read_trace, strided, write_trace, Event, TraceStats};

/// Event wrapper so randomized traces can shrink (toward dropping events).
#[derive(Debug, Clone)]
struct Ev(Event);

impl Shrink for Ev {
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

fn arb_event(rng: &mut Rng) -> Ev {
    Ev(match rng.range_u32(0, 5) {
        0 => Event::Work(rng.next_u64() as u32),
        1 => Event::FpWork(rng.next_u64() as u32),
        2 => Event::Branch {
            mispredict: rng.bool(),
        },
        3 => Event::Load {
            addr: rng.next_u64(),
            dep: rng.bool(),
        },
        _ => Event::Store {
            addr: rng.next_u64(),
        },
    })
}

fn events_of(evs: &[Ev]) -> Vec<Event> {
    evs.iter().map(|e| e.0).collect()
}

#[test]
fn codec_roundtrips() {
    forall(
        "codec_roundtrips",
        256,
        |rng| rng.vec(0, 500, arb_event),
        |evs: &Vec<Ev>| {
            let events = events_of(evs);
            let bytes = write_trace(&events);
            assert_eq!(read_trace(&bytes).unwrap(), events);
        },
    );
}

#[test]
fn truncated_streams_never_panic() {
    forall(
        "truncated_streams_never_panic",
        256,
        |rng| (rng.vec(1, 50, arb_event), rng.f64()),
        |&(ref evs, cut_fraction)| {
            let bytes = write_trace(&events_of(evs));
            let cut = (bytes.len() as f64 * cut_fraction.clamp(0.0, 1.0)) as usize;
            // Must return an error or a (possibly shorter-declared) trace,
            // never panic.
            let _ = read_trace(&bytes[..cut.min(bytes.len())]);
        },
    );
}

#[test]
fn corrupted_bytes_never_panic() {
    forall(
        "corrupted_bytes_never_panic",
        256,
        |rng| (rng.vec(1, 50, arb_event), rng.next_u64(), rng.next_u64()),
        |&(ref evs, pos_seed, value)| {
            if evs.is_empty() {
                return;
            }
            let mut bytes = write_trace(&events_of(evs));
            let pos = (pos_seed % bytes.len() as u64) as usize;
            bytes[pos] = value as u8;
            let _ = read_trace(&bytes);
        },
    );
}

#[test]
fn strided_generator_counts_add_up() {
    forall(
        "strided_generator_counts_add_up",
        256,
        |rng| {
            (
                rng.range_u64(1, 10_000),
                rng.range_u64(0, 2_000),
                rng.range_u32(0, 50),
            )
        },
        |&(stride, count, work)| {
            if stride == 0 {
                return; // shrinking artifact; strides are generated >= 1
            }
            let stats: TraceStats = strided(stride, count, work).collect();
            assert_eq!(stats.loads, count);
            assert_eq!(stats.stores, 0);
            let expected_work = if work > 0 && count > 1 {
                u64::from(work) * (count - 1)
            } else {
                0
            };
            assert_eq!(stats.instructions, count + expected_work);
        },
    );
}

#[test]
fn strided_addresses_are_unique() {
    forall(
        "strided_addresses_are_unique",
        256,
        |rng| (rng.range_u64(1, 100_000), rng.range_u64(1, 2_000)),
        |&(stride, count)| {
            if stride == 0 {
                return; // shrinking artifact; strides are generated >= 1
            }
            let addrs: Vec<u64> = strided(stride, count, 0).filter_map(|e| e.addr()).collect();
            let set: std::collections::HashSet<u64> = addrs.iter().copied().collect();
            assert_eq!(set.len() as u64, count);
        },
    );
}
