//! Property-based tests of the timing model.

use primecache_cache::{CacheConfig, Hierarchy, HierarchyConfig, L2Organization};
use primecache_check::prop::{forall, Rng, Shrink};
use primecache_cpu::{Cpu, CpuConfig};
use primecache_mem::{Dram, MemConfig};
use primecache_trace::Event;

/// Event wrapper so randomized traces can shrink (toward dropping events).
#[derive(Debug, Clone)]
struct Ev(Event);

impl Shrink for Ev {
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

fn arb_event(rng: &mut Rng) -> Ev {
    Ev(match rng.range_u32(0, 4) {
        0 => Event::Work(rng.range_u32(1, 200)),
        1 => Event::Branch {
            mispredict: rng.bool(),
        },
        2 => Event::Load {
            addr: rng.range_u64(0, 1 << 24) * 8,
            dep: rng.bool(),
        },
        _ => Event::Store {
            addr: rng.range_u64(0, 1 << 24) * 8,
        },
    })
}

fn events_of(evs: &[Ev]) -> Vec<Event> {
    evs.iter().map(|e| e.0).collect()
}

fn run(events: &[Event]) -> primecache_cpu::ExecBreakdown {
    let mut h = Hierarchy::new(HierarchyConfig::paper_default(L2Organization::SetAssoc(
        CacheConfig::new(512 * 1024, 4, 64),
    )));
    let mut d = Dram::new(MemConfig::paper_default());
    Cpu::new(CpuConfig::paper_default()).run(events.to_vec(), &mut h, &mut d)
}

#[test]
fn busy_time_equals_instruction_throughput() {
    forall(
        "busy_time_equals_instruction_throughput",
        64,
        |rng| rng.vec(1, 400, arb_event),
        |evs: &Vec<Ev>| {
            let events = events_of(evs);
            let b = run(&events);
            let instrs: u64 = events.iter().map(Event::instructions).sum();
            // Busy time is instructions / width, within rounding.
            assert!(b.busy <= instrs);
            assert!(b.busy >= (instrs / 6).saturating_sub(1));
        },
    );
}

#[test]
fn other_stall_is_exactly_branch_penalties() {
    forall(
        "other_stall_is_exactly_branch_penalties",
        64,
        |rng| rng.vec(1, 400, arb_event),
        |evs: &Vec<Ev>| {
            let events = events_of(evs);
            let b = run(&events);
            let mispredicts = events
                .iter()
                .filter(|e| matches!(e, Event::Branch { mispredict: true }))
                .count() as u64;
            assert_eq!(b.other_stall, mispredicts * 12);
        },
    );
}

#[test]
fn total_is_sum_of_parts() {
    forall(
        "total_is_sum_of_parts",
        64,
        |rng| rng.vec(1, 400, arb_event),
        |evs: &Vec<Ev>| {
            let b = run(&events_of(evs));
            assert_eq!(b.total(), b.busy + b.other_stall + b.mem_stall);
        },
    );
}

#[test]
fn adding_work_never_reduces_time() {
    forall(
        "adding_work_never_reduces_time",
        64,
        |rng| rng.vec(1, 200, arb_event),
        |evs: &Vec<Ev>| {
            let events = events_of(evs);
            let t1 = run(&events).total();
            let mut more = events.clone();
            more.push(Event::Work(600));
            let t2 = run(&more).total();
            assert!(t2 >= t1);
        },
    );
}

#[test]
fn dependent_loads_never_run_faster() {
    forall(
        "dependent_loads_never_run_faster",
        64,
        |rng| rng.vec(1, 200, |r| r.range_u64(0, 1 << 24)),
        |seed: &Vec<u64>| {
            let indep: Vec<Event> = seed.iter().map(|&a| Event::load(a * 64)).collect();
            let dep: Vec<Event> = seed.iter().map(|&a| Event::chase(a * 64)).collect();
            assert!(run(&dep).total() >= run(&indep).total());
        },
    );
}

#[test]
fn runs_are_deterministic() {
    forall(
        "runs_are_deterministic",
        64,
        |rng| rng.vec(1, 200, arb_event),
        |evs: &Vec<Ev>| {
            let events = events_of(evs);
            assert_eq!(run(&events), run(&events));
        },
    );
}
