//! Property-based tests of the timing model.

use primecache_cache::{CacheConfig, Hierarchy, HierarchyConfig, L2Organization};
use primecache_cpu::{Cpu, CpuConfig};
use primecache_mem::{Dram, MemConfig};
use primecache_trace::Event;
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (1u32..200).prop_map(Event::Work),
        any::<bool>().prop_map(|mispredict| Event::Branch { mispredict }),
        (0u64..(1 << 24), any::<bool>()).prop_map(|(a, dep)| Event::Load { addr: a * 8, dep }),
        (0u64..(1 << 24)).prop_map(|a| Event::Store { addr: a * 8 }),
    ]
}

fn run(events: &[Event]) -> primecache_cpu::ExecBreakdown {
    let mut h = Hierarchy::new(HierarchyConfig::paper_default(L2Organization::SetAssoc(
        CacheConfig::new(512 * 1024, 4, 64),
    )));
    let mut d = Dram::new(MemConfig::paper_default());
    Cpu::new(CpuConfig::paper_default()).run(events.to_vec(), &mut h, &mut d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn busy_time_equals_instruction_throughput(events in prop::collection::vec(arb_event(), 1..400)) {
        let b = run(&events);
        let instrs: u64 = events.iter().map(|e| e.instructions()).sum();
        // Busy time is instructions / width, within rounding.
        prop_assert!(b.busy <= instrs);
        prop_assert!(b.busy >= (instrs / 6).saturating_sub(1));
    }

    #[test]
    fn other_stall_is_exactly_branch_penalties(events in prop::collection::vec(arb_event(), 1..400)) {
        let b = run(&events);
        let mispredicts = events
            .iter()
            .filter(|e| matches!(e, Event::Branch { mispredict: true }))
            .count() as u64;
        prop_assert_eq!(b.other_stall, mispredicts * 12);
    }

    #[test]
    fn total_is_sum_of_parts(events in prop::collection::vec(arb_event(), 1..400)) {
        let b = run(&events);
        prop_assert_eq!(b.total(), b.busy + b.other_stall + b.mem_stall);
    }

    #[test]
    fn adding_work_never_reduces_time(events in prop::collection::vec(arb_event(), 1..200)) {
        let t1 = run(&events).total();
        let mut more = events.clone();
        more.push(Event::Work(600));
        let t2 = run(&more).total();
        prop_assert!(t2 >= t1);
    }

    #[test]
    fn dependent_loads_never_run_faster(seed in prop::collection::vec(0u64..(1 << 24), 1..200)) {
        let indep: Vec<Event> = seed.iter().map(|&a| Event::load(a * 64)).collect();
        let dep: Vec<Event> = seed.iter().map(|&a| Event::chase(a * 64)).collect();
        prop_assert!(run(&dep).total() >= run(&indep).total());
    }

    #[test]
    fn runs_are_deterministic(events in prop::collection::vec(arb_event(), 1..200)) {
        prop_assert_eq!(run(&events), run(&events));
    }
}
