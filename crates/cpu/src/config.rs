//! Processor configuration (Table 3).

use serde::{Deserialize, Serialize};

/// First-order parameters of the modelled core.
///
/// Defaults are the paper's Table 3: 6-issue dynamic, 1.6 GHz; pending
/// loads/stores 8/16; 12-cycle branch penalty; L1 3-cycle and L2 16-cycle
/// round trips.
///
/// # Examples
///
/// ```
/// use primecache_cpu::CpuConfig;
///
/// let cfg = CpuConfig::paper_default();
/// assert_eq!(cfg.issue_width, 6);
/// assert_eq!(cfg.branch_penalty, 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Instructions retired per cycle at peak.
    pub issue_width: u32,
    /// Floating-point operations issued per cycle (Table 3: 4 FP FUs).
    pub fp_width: u32,
    /// Memory operations issued per cycle (Table 3: 2 ld/st FUs).
    pub mem_width: u32,
    /// Cycles lost per branch misprediction.
    pub branch_penalty: u64,
    /// Maximum in-flight loads.
    pub max_pending_loads: usize,
    /// Maximum in-flight stores.
    pub max_pending_stores: usize,
    /// L1 hit round trip, cycles (fully pipelined: contributes no stall).
    pub l1_hit_cycles: u64,
    /// L2 hit round trip, cycles.
    pub l2_hit_cycles: u64,
    /// Reorder-buffer capacity in instructions: a load's latency can be
    /// hidden only by up to this many younger instructions (Table 3 does
    /// not list it; 128 is typical for a 2003-era 6-issue core and is
    /// recorded in DESIGN.md).
    pub rob_size: u64,
}

impl CpuConfig {
    /// The paper's Table-3 processor.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            issue_width: 6,
            fp_width: 4,
            mem_width: 2,
            branch_penalty: 12,
            max_pending_loads: 8,
            max_pending_stores: 16,
            l1_hit_cycles: 3,
            l2_hit_cycles: 16,
            rob_size: 128,
        }
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values() {
        let c = CpuConfig::paper_default();
        assert_eq!(c.fp_width, 4);
        assert_eq!(c.mem_width, 2);
        assert_eq!(c.max_pending_loads, 8);
        assert_eq!(c.max_pending_stores, 16);
        assert_eq!(c.l1_hit_cycles, 3);
        assert_eq!(c.l2_hit_cycles, 16);
    }
}
