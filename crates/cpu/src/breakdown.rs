//! Execution-time breakdown.

use serde::{Deserialize, Serialize};

/// Cycle breakdown of one simulated run — the three bar segments of the
/// paper's Figs. 7–10.
///
/// # Examples
///
/// ```
/// use primecache_cpu::ExecBreakdown;
///
/// let b = ExecBreakdown { busy: 600, other_stall: 100, mem_stall: 300 };
/// assert_eq!(b.total(), 1000);
/// assert!((b.mem_fraction() - 0.3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecBreakdown {
    /// Cycles spent executing instructions (*Busy*).
    pub busy: u64,
    /// Cycles lost to pipeline hazards — branch mispredictions
    /// (*Other Stalls*).
    pub other_stall: u64,
    /// Cycles stalled on memory (*Memory Stall*).
    pub mem_stall: u64,
}

impl ExecBreakdown {
    /// Total execution time in cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.busy + self.other_stall + self.mem_stall
    }

    /// Fraction of time stalled on memory; 0.0 for an empty run.
    #[must_use]
    pub fn mem_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.mem_stall as f64 / t as f64
        }
    }

    /// Speedup of `self` relative to `baseline` (baseline_time / my_time).
    ///
    /// # Panics
    ///
    /// Panics if `self.total() == 0`.
    #[must_use]
    pub fn speedup_vs(&self, baseline: &ExecBreakdown) -> f64 {
        assert!(self.total() > 0, "cannot compute speedup of an empty run");
        baseline.total() as f64 / self.total() as f64
    }

    /// Execution time normalized to a baseline (my_time / baseline_time),
    /// the y-axis of Figs. 7–10.
    ///
    /// # Panics
    ///
    /// Panics if `baseline.total() == 0`.
    #[must_use]
    pub fn normalized_to(&self, baseline: &ExecBreakdown) -> f64 {
        assert!(baseline.total() > 0, "empty baseline");
        self.total() as f64 / baseline.total() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let b = ExecBreakdown {
            busy: 100,
            other_stall: 50,
            mem_stall: 350,
        };
        assert_eq!(b.total(), 500);
        assert!((b.mem_fraction() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn speedup_and_normalization_are_inverse() {
        let fast = ExecBreakdown {
            busy: 100,
            other_stall: 0,
            mem_stall: 100,
        };
        let slow = ExecBreakdown {
            busy: 100,
            other_stall: 0,
            mem_stall: 300,
        };
        assert!((fast.speedup_vs(&slow) - 2.0).abs() < 1e-12);
        assert!((fast.normalized_to(&slow) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown() {
        let e = ExecBreakdown::default();
        assert_eq!(e.total(), 0);
        assert_eq!(e.mem_fraction(), 0.0);
    }
}
