//! Trace-driven superscalar timing model (the PROCESSOR half of Table 3).
//!
//! The paper drives its caches from an execution-driven model of a 6-issue
//! dynamic superscalar core \[9\]. This crate substitutes a trace-driven
//! cycle-accounting model with the same first-order parameters:
//!
//! * 6-issue, so `n` non-memory instructions retire in `⌈n/6⌉` cycles
//!   (*Busy* time),
//! * a 12-cycle branch-misprediction penalty (*Other Stalls*),
//! * at most 8 pending loads and 16 pending stores; independent misses
//!   overlap within those windows, dependent (pointer-chase) loads expose
//!   their full latency (*Memory Stall*),
//! * L1 hits (3-cycle round trip) are fully pipelined; L2 hits cost the
//!   16-cycle round trip; L2 misses go to the DRAM model of
//!   [`primecache_mem`] and see row-hit/row-miss latency plus queueing.
//!
//! The output is the [`ExecBreakdown`] the paper's Figs. 7–10 plot: Busy /
//! Other Stalls / Memory Stall.
//!
//! # Examples
//!
//! ```
//! use primecache_cache::{CacheConfig, Hierarchy, HierarchyConfig, L2Organization};
//! use primecache_cpu::{Cpu, CpuConfig};
//! use primecache_mem::{Dram, MemConfig};
//! use primecache_trace::strided;
//!
//! let mut hierarchy = Hierarchy::new(HierarchyConfig::paper_default(
//!     L2Organization::SetAssoc(CacheConfig::new(512 * 1024, 4, 64)),
//! ));
//! let mut dram = Dram::new(MemConfig::paper_default());
//! let mut cpu = Cpu::new(CpuConfig::paper_default());
//! let breakdown = cpu.run(strided(64, 10_000, 12), &mut hierarchy, &mut dram);
//! assert!(breakdown.total() > 0);
//! ```

mod breakdown;
mod config;
mod model;

pub use breakdown::ExecBreakdown;
pub use config::CpuConfig;
pub use model::{Cpu, StallAttribution};
