//! The cycle-accounting core model.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use primecache_cache::{AccessOutcome, Hierarchy, L2Sim, NO_HINT};
use primecache_core::index::SetIndexer;
use primecache_mem::Dram;
use primecache_trace::Event;

#[cfg(feature = "obs")]
use primecache_obs::ObsHandle;

use crate::{CpuConfig, ExecBreakdown};

/// Trace-driven timing model of the Table-3 core.
///
/// See the crate docs for the modelling rules. A [`Cpu`] is reusable:
/// each [`Cpu::run`] starts from a clean pipeline.
#[derive(Debug, Clone)]
pub struct Cpu {
    config: CpuConfig,
    /// Stall attribution of the most recent [`Cpu::run`].
    last_stalls: StallAttribution,
    /// Sim-time clock feed for event timestamps.
    #[cfg(feature = "obs")]
    obs: Option<ObsHandle>,
}

/// Fine-grained attribution of [`ExecBreakdown`] stall cycles — the
/// data behind a Figure-8-style stacked breakdown.
///
/// The memory-side fields partition `mem_stall` exactly:
/// `rob + mlp + dep + store + drain == mem_stall`, and
/// `branch == other_stall`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallAttribution {
    /// Cycles stalled because the ROB window filled behind an
    /// outstanding load.
    pub rob: u64,
    /// Cycles stalled because the maximum number of in-flight loads
    /// (MSHR/MLP limit) was reached.
    pub mlp: u64,
    /// Cycles a dependent (serializing) load exposed directly.
    pub dep: u64,
    /// Cycles waiting on a full store buffer.
    pub store: u64,
    /// Cycles waiting for the last in-flight loads at program end.
    pub drain: u64,
    /// Branch-mispredict penalty cycles (`other_stall`).
    pub branch: u64,
}

impl StallAttribution {
    /// Total memory-side stall cycles; equals `ExecBreakdown::mem_stall`
    /// for the run that produced this attribution.
    #[must_use]
    pub fn mem_total(&self) -> u64 {
        self.rob + self.mlp + self.dep + self.store + self.drain
    }
}

/// Why the core is waiting on the oldest in-flight load.
#[derive(Debug, Clone, Copy)]
enum StallCause {
    /// The ROB window filled behind it.
    Rob,
    /// The in-flight-load limit was reached.
    Mlp,
}

/// Issue class of an instruction (which functional units it occupies).
#[derive(Debug, Clone, Copy)]
enum IssueClass {
    /// Integer / control work: only the global issue width limits it.
    Generic,
    /// Floating-point operation.
    Fp,
    /// Load or store.
    Mem,
}

/// One in-flight load, retired in program order.
#[derive(Debug, Clone, Copy)]
struct InflightLoad {
    completion: u64,
    issued_at_instr: u64,
}

/// Mutable per-run state.
struct RunState {
    now: u64,
    busy: u64,
    other_stall: u64,
    mem_stall: u64,
    /// Instructions issued so far (for the ROB-window constraint).
    instr_total: u64,
    /// Floating-point instructions issued so far (FP-FU constraint).
    fp_total: u64,
    /// Memory instructions issued so far (ld/st-FU constraint).
    mem_total: u64,
    /// In-flight loads in program order (front = oldest).
    pending_loads: VecDeque<InflightLoad>,
    /// Completion times of in-flight stores (min-heap; the store buffer
    /// drains out of order and does not occupy the ROB).
    pending_stores: BinaryHeap<Reverse<u64>>,
    /// Per-cause stall attribution (partitions `mem_stall` exactly).
    stalls: StallAttribution,
}

impl RunState {
    fn new() -> Self {
        Self {
            now: 0,
            busy: 0,
            other_stall: 0,
            mem_stall: 0,
            instr_total: 0,
            fp_total: 0,
            mem_total: 0,
            pending_loads: VecDeque::new(),
            pending_stores: BinaryHeap::new(),
            stalls: StallAttribution::default(),
        }
    }

    /// Retires instructions through the issue stage, honouring the
    /// per-class functional-unit limits: busy time is the maximum of the
    /// class throughput requirements
    /// (`total/issue_width`, `fp/fp_width`, `mem/mem_width`).
    fn issue(&mut self, n: u64, class: IssueClass, cfg: &CpuConfig) {
        self.instr_total += n;
        match class {
            IssueClass::Generic => {}
            IssueClass::Fp => self.fp_total += n,
            IssueClass::Mem => self.mem_total += n,
        }
        let target = (self.instr_total / u64::from(cfg.issue_width))
            .max(self.fp_total / u64::from(cfg.fp_width))
            .max(self.mem_total / u64::from(cfg.mem_width));
        if target > self.busy {
            let delta = target - self.busy;
            self.busy += delta;
            self.now += delta;
        }
    }

    /// Drops pending operations that completed by `now` (in program order
    /// for loads — the ROB retires in order).
    fn retire_completed(&mut self) {
        while matches!(self.pending_loads.front(), Some(l) if l.completion <= self.now) {
            self.pending_loads.pop_front();
        }
        while matches!(self.pending_stores.peek(), Some(&Reverse(t)) if t <= self.now) {
            self.pending_stores.pop();
        }
    }

    /// Stalls until the oldest in-flight load completes, attributing the
    /// exposed cycles to `cause`.
    fn wait_oldest_load(&mut self, cause: StallCause) {
        if let Some(l) = self.pending_loads.pop_front() {
            if l.completion > self.now {
                let delta = l.completion - self.now;
                self.mem_stall += delta;
                match cause {
                    StallCause::Rob => self.stalls.rob += delta,
                    StallCause::Mlp => self.stalls.mlp += delta,
                }
                self.now = l.completion;
            }
            self.retire_completed();
        }
    }

    /// Enforces the ROB window: the core cannot run more than `rob`
    /// instructions past an outstanding load.
    fn enforce_rob(&mut self, rob: u64) {
        while matches!(
            self.pending_loads.front(),
            Some(l) if self.instr_total.saturating_sub(l.issued_at_instr) >= rob
        ) {
            self.wait_oldest_load(StallCause::Rob);
        }
    }
}

impl Cpu {
    /// Creates a core model with the given configuration.
    #[must_use]
    pub fn new(config: CpuConfig) -> Self {
        Self {
            config,
            last_stalls: StallAttribution::default(),
            #[cfg(feature = "obs")]
            obs: None,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Attaches an observability recorder; the core advances its
    /// sim-time clock so cache/DRAM events carry cycle timestamps.
    #[cfg(feature = "obs")]
    pub fn attach_obs(&mut self, handle: ObsHandle) {
        self.obs = Some(handle);
    }

    /// Per-cause stall attribution of the most recent [`Cpu::run`]
    /// (all zeros before the first run).
    ///
    /// Invariants: `mem_total()` equals the run's
    /// `ExecBreakdown::mem_stall` and `branch` equals its
    /// `other_stall`.
    #[must_use]
    pub fn last_stall_attribution(&self) -> StallAttribution {
        self.last_stalls
    }

    /// Runs a trace through the hierarchy and DRAM, returning the cycle
    /// breakdown.
    ///
    /// Dirty L2 victims are issued to DRAM as write traffic (they occupy
    /// banks and bus but nothing waits on them).
    pub fn run<T, X, J>(
        &mut self,
        trace: T,
        hierarchy: &mut Hierarchy<X, J>,
        dram: &mut Dram,
    ) -> ExecBreakdown
    where
        T: IntoIterator<Item = Event>,
        X: L2Sim,
        J: SetIndexer,
    {
        self.run_hinted(trace.into_iter().map(|ev| (ev, NO_HINT)), hierarchy, dram)
    }

    /// [`Cpu::run`] over `(event, l2_set_hint)` pairs: batched drivers
    /// precompute L2 set indexes a chunk at a time and feed them through
    /// here ([`NO_HINT`] on non-memory events). Bit-identical to
    /// [`Cpu::run`] over the same events.
    pub fn run_hinted<T, X, J>(
        &mut self,
        trace: T,
        hierarchy: &mut Hierarchy<X, J>,
        dram: &mut Dram,
    ) -> ExecBreakdown
    where
        T: IntoIterator<Item = (Event, u32)>,
        X: L2Sim,
        J: SetIndexer,
    {
        let cfg = self.config;
        let line = match hierarchy.config().l2 {
            primecache_cache::L2Organization::SetAssoc(c) => c.line_bytes(),
            primecache_cache::L2Organization::Skewed(c) => c.line_bytes(),
            primecache_cache::L2Organization::FullyAssociative { line_bytes, .. } => line_bytes,
        };
        let mut st = RunState::new();
        for (ev, hint) in trace {
            st.retire_completed();
            st.enforce_rob(cfg.rob_size);
            match ev {
                Event::Work(n) | Event::FpWork(n) => {
                    let class = if matches!(ev, Event::FpWork(_)) {
                        IssueClass::Fp
                    } else {
                        IssueClass::Generic
                    };
                    // Issue in ROB-sized chunks so an outstanding load
                    // stalls the pipeline mid-burst, not only at event
                    // boundaries.
                    let mut remaining = u64::from(n);
                    let chunk = (cfg.rob_size / 4).max(1);
                    while remaining > 0 {
                        let step = remaining.min(chunk);
                        st.issue(step, class, &cfg);
                        remaining -= step;
                        if remaining > 0 {
                            st.retire_completed();
                            st.enforce_rob(cfg.rob_size);
                        }
                    }
                }
                Event::Branch { mispredict } => {
                    st.issue(1, IssueClass::Generic, &cfg);
                    if mispredict {
                        st.now += cfg.branch_penalty;
                        st.other_stall += cfg.branch_penalty;
                        st.stalls.branch += cfg.branch_penalty;
                    }
                }
                Event::Load { addr, dep } => {
                    st.issue(1, IssueClass::Mem, &cfg);
                    let completion = self.service(addr, false, hint, &mut st, hierarchy, dram);
                    match completion {
                        None => {} // L1 hit: fully pipelined
                        // Serializing load: expose the full latency.
                        Some(t) if dep && t > st.now => {
                            st.mem_stall += t - st.now;
                            st.stalls.dep += t - st.now;
                            st.now = t;
                        }
                        Some(_) if dep => {}
                        Some(t) => {
                            if st.pending_loads.len() >= cfg.max_pending_loads {
                                st.wait_oldest_load(StallCause::Mlp);
                            }
                            st.pending_loads.push_back(InflightLoad {
                                completion: t,
                                issued_at_instr: st.instr_total,
                            });
                        }
                    }
                }
                Event::Store { addr } => {
                    st.issue(1, IssueClass::Mem, &cfg);
                    if let Some(t) = self.service(addr, true, hint, &mut st, hierarchy, dram) {
                        if st.pending_stores.len() >= cfg.max_pending_stores {
                            if let Some(Reverse(done)) = st.pending_stores.pop() {
                                if done > st.now {
                                    st.mem_stall += done - st.now;
                                    st.stalls.store += done - st.now;
                                    st.now = done;
                                }
                            }
                        }
                        st.pending_stores.push(Reverse(t));
                    }
                }
            }
            // Dirty L2 victims stream to DRAM without blocking the core.
            let writebacks = hierarchy.take_memory_writes();
            #[cfg(feature = "obs")]
            if !writebacks.is_empty() {
                if let Some(h) = &self.obs {
                    h.borrow_mut().set_now(st.now);
                }
            }
            for block in writebacks {
                dram.request(block * line, st.now, true);
            }
        }
        // The program cannot finish before its last load returns.
        let last = st.pending_loads.iter().map(|l| l.completion).max();
        if let Some(t) = last {
            if t > st.now {
                st.mem_stall += t - st.now;
                st.stalls.drain += t - st.now;
                st.now = t;
            }
        }
        self.last_stalls = st.stalls;
        ExecBreakdown {
            busy: st.busy,
            other_stall: st.other_stall,
            mem_stall: st.mem_stall,
        }
    }

    /// Services one memory reference; returns its completion time, or
    /// `None` for a (pipelined) L1 hit.
    fn service<X: L2Sim, J: SetIndexer>(
        &self,
        addr: u64,
        write: bool,
        hint: u32,
        st: &mut RunState,
        hierarchy: &mut Hierarchy<X, J>,
        dram: &mut Dram,
    ) -> Option<u64> {
        #[cfg(feature = "obs")]
        if let Some(h) = &self.obs {
            h.borrow_mut().set_now(st.now);
        }
        match hierarchy.access_hinted(addr, write, hint) {
            AccessOutcome::L1Hit => None,
            AccessOutcome::L2Hit => Some(st.now + self.config.l2_hit_cycles),
            AccessOutcome::Memory => {
                let c = dram.request(addr, st.now + self.config.l2_hit_cycles, false);
                Some(c.complete)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primecache_cache::{CacheConfig, HierarchyConfig, L2Organization};
    use primecache_mem::MemConfig;
    use primecache_trace::strided;

    fn setup() -> (Hierarchy, Dram, Cpu) {
        (
            Hierarchy::new(HierarchyConfig::paper_default(L2Organization::SetAssoc(
                CacheConfig::new(512 * 1024, 4, 64),
            ))),
            Dram::new(MemConfig::paper_default()),
            Cpu::new(CpuConfig::paper_default()),
        )
    }

    #[test]
    fn pure_compute_is_all_busy() {
        let (mut h, mut d, mut cpu) = setup();
        let b = cpu.run([Event::Work(600)], &mut h, &mut d);
        assert_eq!(b.busy, 100);
        assert_eq!(b.other_stall, 0);
        assert_eq!(b.mem_stall, 0);
    }

    #[test]
    fn issue_width_rounds_across_events() {
        let (mut h, mut d, mut cpu) = setup();
        // 4 x Work(3) = 12 instructions = exactly 2 cycles at width 6.
        let b = cpu.run(vec![Event::Work(3); 4], &mut h, &mut d);
        assert_eq!(b.busy, 2);
    }

    #[test]
    fn fp_work_is_four_wide() {
        let (mut h, mut d, mut cpu) = setup();
        let b = cpu.run([Event::FpWork(600)], &mut h, &mut d);
        assert_eq!(b.busy, 150, "600 FP ops at 4/cycle");
        let (mut h2, mut d2, _) = setup();
        let b2 = cpu.run([Event::Work(600)], &mut h2, &mut d2);
        assert_eq!(b2.busy, 100, "600 generic ops at 6/cycle");
    }

    #[test]
    fn memory_ops_are_two_wide() {
        // 64 back-to-back L1 hits: throughput-bound at 2/cycle.
        let (mut h, mut d, mut cpu) = setup();
        cpu.run([Event::load(0)], &mut h, &mut d); // warm the line
        let b = cpu.run(vec![Event::load(0); 64], &mut h, &mut d);
        assert_eq!(b.busy, 32);
    }

    #[test]
    fn mixed_classes_take_the_maximum_requirement() {
        // 16 FP + 16 generic = 32 total: total/6 = 5, fp/4 = 4 => busy 5.
        let (mut h, mut d, mut cpu) = setup();
        let b = cpu.run([Event::FpWork(16), Event::Work(16)], &mut h, &mut d);
        assert_eq!(b.busy, 5);
    }

    #[test]
    fn mispredicts_cost_twelve_cycles() {
        let (mut h, mut d, mut cpu) = setup();
        let b = cpu.run(
            [
                Event::Branch { mispredict: true },
                Event::Branch { mispredict: false },
                Event::Branch { mispredict: true },
            ],
            &mut h,
            &mut d,
        );
        assert_eq!(b.other_stall, 24);
    }

    #[test]
    fn l1_hits_are_free_of_stall() {
        let (mut h, mut d, mut cpu) = setup();
        // Warm one line, then hammer it.
        let warm: Vec<Event> = vec![Event::load(0)];
        cpu.run(warm, &mut h, &mut d);
        let b = cpu.run(vec![Event::load(0); 100], &mut h, &mut d);
        assert_eq!(b.mem_stall, 0);
    }

    #[test]
    fn dependent_misses_expose_full_memory_latency() {
        let (mut h, mut d, mut cpu) = setup();
        // 64 cold dependent loads, far apart: every one is an L2 miss and
        // fully serialized (≥ row-miss or row-hit latency apiece).
        let trace: Vec<Event> = (0..64u64).map(|i| Event::chase(i << 20)).collect();
        let b = cpu.run(trace, &mut h, &mut d);
        assert!(
            b.mem_stall >= 64 * 200,
            "mem stall {} for 64 serialized misses",
            b.mem_stall
        );
    }

    #[test]
    fn independent_misses_overlap() {
        // Addresses chosen to spread across channels and banks (odd line
        // stride), so the window — not the memory system — is the limit.
        let spread = |i: u64| i * 64 * 65;
        let (mut h1, mut d1, mut cpu) = setup();
        let dep: Vec<Event> = (0..64u64).map(|i| Event::chase(spread(i))).collect();
        let b_dep = cpu.run(dep, &mut h1, &mut d1);

        let (mut h2, mut d2, _) = setup();
        let indep: Vec<Event> = (0..64u64).map(|i| Event::load(spread(i))).collect();
        let b_ind = cpu.run(indep, &mut h2, &mut d2);

        assert!(
            b_ind.mem_stall * 2 < b_dep.mem_stall,
            "independent {} vs dependent {}",
            b_ind.mem_stall,
            b_dep.mem_stall
        );
    }

    #[test]
    fn rob_limits_latency_hiding() {
        // A lone miss followed by a long compute tail: with a 128-entry
        // ROB at width 6, only ~21 cycles of the ~224-cycle miss can be
        // hidden — the rest must surface as memory stall.
        let (mut h, mut d, mut cpu) = setup();
        let trace = vec![Event::load(1 << 22), Event::Work(6000)];
        let b = cpu.run(trace, &mut h, &mut d);
        assert!(
            b.mem_stall > 150,
            "ROB must expose most of an isolated miss: stall {}",
            b.mem_stall
        );
        assert!(b.busy >= 1000);
    }

    #[test]
    fn dense_misses_amortize_within_the_rob() {
        // Eight misses issued back-to-back resolve together: total stall
        // is far less than eight full latencies.
        let (mut h, mut d, mut cpu) = setup();
        let mut trace: Vec<Event> = (0..8u64).map(|i| Event::load(i * 64 * 65)).collect();
        trace.push(Event::Work(6000));
        let b = cpu.run(trace, &mut h, &mut d);
        assert!(
            b.mem_stall < 4 * 240,
            "dense misses must overlap: stall {}",
            b.mem_stall
        );
    }

    #[test]
    fn l2_hits_cost_less_than_memory() {
        // Working set fits L2 but not L1: second pass is all L2 hits.
        let (mut h, mut d, mut cpu) = setup();
        let pass: Vec<Event> = (0..1024u64).map(|i| Event::chase(i * 256)).collect();
        cpu.run(pass.clone(), &mut h, &mut d); // cold pass: memory
        let warm = cpu.run(pass, &mut h, &mut d); // warm pass: L2 hits
        let per_load = warm.mem_stall as f64 / 1024.0;
        assert!(
            per_load < 20.0,
            "L2-hit chase should cost ~16 cycles, got {per_load}"
        );
        assert!(per_load > 10.0, "L2 hits are not free, got {per_load}");
    }

    #[test]
    fn breakdown_total_is_consistent() {
        let (mut h, mut d, mut cpu) = setup();
        let b = cpu.run(strided(4096, 5000, 12), &mut h, &mut d);
        assert_eq!(b.total(), b.busy + b.other_stall + b.mem_stall);
        assert!(b.busy > 0 && b.mem_stall > 0);
    }

    #[test]
    fn stall_attribution_partitions_the_breakdown() {
        // The per-cause attribution must account for every stall cycle:
        // memory causes sum to mem_stall, branch equals other_stall.
        let mixes: Vec<Vec<Event>> = vec![
            strided(4096, 5000, 12).collect(),
            (0..64u64).map(|i| Event::chase(i << 20)).collect(),
            (0..256u64)
                .flat_map(|i| [Event::load(i * 64 * 65), Event::Store { addr: i * 64 * 65 }])
                .collect(),
        ];
        for trace in mixes {
            let (mut h, mut d, mut cpu) = setup();
            let b = cpu.run(trace, &mut h, &mut d);
            let s = cpu.last_stall_attribution();
            assert_eq!(s.mem_total(), b.mem_stall, "{s:?} vs {b:?}");
            assert_eq!(s.branch, b.other_stall, "{s:?} vs {b:?}");
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let (mut h, mut d, mut cpu) = setup();
            cpu.run(strided(4096, 5000, 12), &mut h, &mut d)
        };
        assert_eq!(run(), run());
    }
}
