//! Property-based tests of the allocator models.

use primecache_check::prop::{forall, Rng};
use primecache_heap::{Allocator, BuddyAllocator, BumpAllocator, SizeClassAllocator};

/// Random alloc/free scripts: `(size, keep)` — allocate `size`, free it
/// later unless `keep`.
fn scripts(rng: &mut Rng) -> Vec<(u64, bool)> {
    rng.vec(1, 200, |r| (r.range_u64(1, 2000), r.bool()))
}

fn overlap_check(regions: &[(u64, u64)]) {
    let mut sorted = regions.to_vec();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        let (a, s) = w[0];
        let (b, _) = w[1];
        assert!(a + s <= b, "overlap: [{a},{}) and {b}", a + s);
    }
}

#[test]
fn buddy_never_overlaps_and_coalesces() {
    forall(
        "buddy_never_overlaps_and_coalesces",
        64,
        scripts,
        |script: &Vec<(u64, bool)>| {
            if script.iter().any(|&(size, _)| size == 0) {
                return; // shrinking artifact; sizes are generated >= 1
            }
            let mut b = BuddyAllocator::new(0x10_0000, 1 << 22);
            let mut live: Vec<(u64, u64)> = Vec::new();
            for &(size, keep) in script {
                if let Some(a) = b.alloc(size) {
                    live.push((a, size));
                    overlap_check(&live);
                    if !keep {
                        let (a, s) = live.pop().expect("just pushed");
                        b.free(a, s);
                    }
                }
            }
            for (a, s) in live.drain(..) {
                b.free(a, s);
            }
            // Everything freed => fully coalesced => the whole arena is one
            // block again.
            assert_eq!(b.free_blocks(), 1);
            assert_eq!(b.live_bytes(), 0);
            assert_eq!(b.alloc(1 << 22), Some(0x10_0000));
        },
    );
}

#[test]
fn buddy_addresses_are_block_aligned() {
    forall(
        "buddy_addresses_are_block_aligned",
        64,
        |rng| rng.vec(1, 100, |r| r.range_u64(1, 4000)),
        |sizes: &Vec<u64>| {
            let mut b = BuddyAllocator::new(0, 1 << 24);
            for &s in sizes {
                if s == 0 {
                    continue; // shrinking artifact
                }
                if let Some(a) = b.alloc(s) {
                    let block = s.next_power_of_two().max(32);
                    assert_eq!(a % block, 0, "size {} at {:#x}", s, a);
                }
            }
        },
    );
}

#[test]
fn size_class_reuses_only_freed_slots() {
    forall(
        "size_class_reuses_only_freed_slots",
        64,
        scripts,
        |script: &Vec<(u64, bool)>| {
            if script.iter().any(|&(size, _)| size == 0) {
                return; // shrinking artifact; sizes are generated >= 1
            }
            let mut s = SizeClassAllocator::new(0, &[64, 256, 1024, 4096]);
            let mut live: Vec<(u64, u64)> = Vec::new();
            for &(size, keep) in script {
                if size > 4096 {
                    assert_eq!(s.alloc(size), None);
                    continue;
                }
                let a = s.alloc(size).expect("classes cover all sizes in range");
                live.push((a, size));
                overlap_check(&live);
                if !keep {
                    let (a, sz) = live.pop().expect("just pushed");
                    s.free(a, sz);
                }
            }
        },
    );
}

#[test]
fn bump_is_monotonic() {
    forall(
        "bump_is_monotonic",
        64,
        |rng| rng.vec(1, 200, |r| r.range_u64(1, 5000)),
        |sizes: &Vec<u64>| {
            let mut b = BumpAllocator::new(0x4000, 8);
            let mut prev = 0u64;
            for &s in sizes {
                let a = b.alloc(s).expect("bump never exhausts in range");
                assert!(a >= prev);
                prev = a + s;
            }
        },
    );
}

#[test]
fn live_bytes_never_negative_or_leaking() {
    forall(
        "live_bytes_never_negative_or_leaking",
        64,
        scripts,
        |script: &Vec<(u64, bool)>| {
            let mut b = BuddyAllocator::new(0, 1 << 22);
            let mut expected = 0u64;
            let mut held: Vec<(u64, u64)> = Vec::new();
            for &(size, keep) in script {
                if size == 0 {
                    continue; // shrinking artifact
                }
                if let Some(a) = b.alloc(size) {
                    expected += size;
                    if keep {
                        held.push((a, size));
                    } else {
                        b.free(a, size);
                        expected -= size;
                    }
                }
                assert_eq!(b.live_bytes(), expected);
            }
        },
    );
}
