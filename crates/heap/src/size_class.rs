//! Slab-style size-class allocation.

use crate::Allocator;

/// A size-class (slab) allocator: each request is served from the
/// smallest class that fits, classes carve their own contiguous runs, and
/// freed slots are recycled LIFO per class.
///
/// Like the buddy allocator it pads objects — to the class size rather
/// than a power of two — so a 512-byte class reproduces the `tree` layout
/// while, say, a 96-byte class stays set-uniform (96 is not a multiple of
/// the 64-byte line).
///
/// # Examples
///
/// ```
/// use primecache_heap::{Allocator, SizeClassAllocator};
///
/// let mut slab = SizeClassAllocator::new(0x1000, &[64, 512]);
/// let a = slab.alloc(300).unwrap();
/// assert_eq!(a % 512, 0x1000 % 512);
/// slab.free(a, 300);
/// assert_eq!(slab.alloc(300), Some(a)); // slot recycled
/// ```
#[derive(Debug, Clone)]
pub struct SizeClassAllocator {
    classes: Vec<Class>,
    live: u64,
}

#[derive(Debug, Clone)]
struct Class {
    size: u64,
    base: u64,
    next: u64,
    free_list: Vec<u64>,
}

/// Bytes reserved per class run (1 GiB of address space — the model never
/// touches memory, only addresses).
const CLASS_SPAN: u64 = 1 << 30;

impl SizeClassAllocator {
    /// Creates an allocator at `base` with the given ascending class
    /// sizes.
    ///
    /// # Panics
    ///
    /// Panics if `class_sizes` is empty or not strictly ascending.
    #[must_use]
    pub fn new(base: u64, class_sizes: &[u64]) -> Self {
        assert!(!class_sizes.is_empty(), "need at least one size class");
        assert!(
            class_sizes.windows(2).all(|w| w[0] < w[1]),
            "class sizes must be strictly ascending"
        );
        let classes = class_sizes
            .iter()
            .enumerate()
            .map(|(i, &size)| Class {
                size,
                base: base + i as u64 * CLASS_SPAN,
                next: 0,
                free_list: Vec::new(),
            })
            .collect();
        Self { classes, live: 0 }
    }

    /// The class sizes in use.
    #[must_use]
    pub fn class_sizes(&self) -> Vec<u64> {
        self.classes.iter().map(|c| c.size).collect()
    }

    fn class_for(&mut self, size: u64) -> Option<&mut Class> {
        self.classes.iter_mut().find(|c| c.size >= size)
    }
}

impl Allocator for SizeClassAllocator {
    fn alloc(&mut self, size: u64) -> Option<u64> {
        if size == 0 {
            return None;
        }
        let class = self.class_for(size)?;
        let addr = class.free_list.pop().unwrap_or_else(|| {
            let a = class.base + class.next * class.size;
            class.next += 1;
            a
        });
        self.live += size;
        Some(addr)
    }

    fn free(&mut self, addr: u64, size: u64) {
        if let Some(class) = self.class_for(size) {
            class.free_list.push(addr);
        }
        self.live = self.live.saturating_sub(size);
    }

    fn live_bytes(&self) -> u64 {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_the_smallest_fitting_class() {
        let mut s = SizeClassAllocator::new(0, &[64, 256, 512]);
        let a64 = s.alloc(10).unwrap();
        let a256 = s.alloc(65).unwrap();
        let a512 = s.alloc(257).unwrap();
        assert!(a64 < CLASS_SPAN);
        assert!((CLASS_SPAN..2 * CLASS_SPAN).contains(&a256));
        assert!((2 * CLASS_SPAN..3 * CLASS_SPAN).contains(&a512));
    }

    #[test]
    fn slots_are_class_strided() {
        let mut s = SizeClassAllocator::new(0, &[512]);
        let addrs: Vec<u64> = (0..10).map(|_| s.alloc(300).unwrap()).collect();
        for w in addrs.windows(2) {
            assert_eq!(w[1] - w[0], 512);
        }
    }

    #[test]
    fn free_slots_recycle_lifo() {
        let mut s = SizeClassAllocator::new(0, &[128]);
        let a = s.alloc(100).unwrap();
        let b = s.alloc(100).unwrap();
        s.free(a, 100);
        s.free(b, 100);
        assert_eq!(s.alloc(100), Some(b));
        assert_eq!(s.alloc(100), Some(a));
    }

    #[test]
    fn oversized_requests_rejected() {
        let mut s = SizeClassAllocator::new(0, &[64, 128]);
        assert_eq!(s.alloc(129), None);
        assert_eq!(s.alloc(0), None);
    }

    #[test]
    fn odd_class_sizes_spread_cache_blocks() {
        // A 96-byte class tiles blocks densely (not a multiple of 64)...
        let mut s = SizeClassAllocator::new(0, &[96]);
        let blocks: std::collections::HashSet<u64> =
            (0..256).map(|_| s.alloc(90).unwrap() / 64).collect();
        assert!(blocks.len() > 200, "{}", blocks.len());
        // ...while a 512-byte class hits only every 8th block.
        let mut s512 = SizeClassAllocator::new(0, &[512]);
        let blocks512: Vec<u64> = (0..256).map(|_| s512.alloc(300).unwrap() / 64).collect();
        assert!(blocks512.iter().all(|b| b % 8 == 0));
    }
}
