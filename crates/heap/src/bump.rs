//! Packed bump allocation.

use crate::Allocator;

/// A bump allocator: objects are packed back to back at a fixed (small)
/// alignment and never reused. This is the layout that *avoids* the
/// padded-struct pathology — consecutive objects tile the cache sets
/// densely.
///
/// # Examples
///
/// ```
/// use primecache_heap::{Allocator, BumpAllocator};
///
/// let mut bump = BumpAllocator::new(0x1000, 16);
/// assert_eq!(bump.alloc(40), Some(0x1000));
/// assert_eq!(bump.alloc(40), Some(0x1030)); // 40 rounded to 48
/// ```
#[derive(Debug, Clone)]
pub struct BumpAllocator {
    base: u64,
    align: u64,
    cursor: u64,
    live: u64,
}

impl BumpAllocator {
    /// Creates a bump allocator starting at `base` with the given
    /// alignment.
    ///
    /// # Panics
    ///
    /// Panics unless `align` is a power of two.
    #[must_use]
    pub fn new(base: u64, align: u64) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        Self {
            base,
            align,
            cursor: 0,
            live: 0,
        }
    }

    /// Total bytes consumed from the arena (including alignment waste).
    #[must_use]
    pub fn used_bytes(&self) -> u64 {
        self.cursor
    }
}

impl Allocator for BumpAllocator {
    fn alloc(&mut self, size: u64) -> Option<u64> {
        if size == 0 {
            return None;
        }
        let addr = self.base + self.cursor;
        let rounded = size.div_ceil(self.align) * self.align;
        self.cursor += rounded;
        self.live += size;
        Some(addr)
    }

    fn free(&mut self, _addr: u64, size: u64) {
        // Bump allocators never reuse; only the accounting changes.
        self.live = self.live.saturating_sub(size);
    }

    fn live_bytes(&self) -> u64 {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_objects_densely() {
        let mut b = BumpAllocator::new(0, 8);
        let addrs: Vec<u64> = (0..100).map(|_| b.alloc(96).unwrap()).collect();
        for w in addrs.windows(2) {
            assert_eq!(w[1] - w[0], 96);
        }
        assert_eq!(b.used_bytes(), 9600);
    }

    #[test]
    fn free_only_updates_accounting() {
        let mut b = BumpAllocator::new(0, 8);
        let a = b.alloc(100).unwrap();
        assert_eq!(b.live_bytes(), 100);
        b.free(a, 100);
        assert_eq!(b.live_bytes(), 0);
        // The space is not reused.
        assert!(b.alloc(8).unwrap() > a);
    }

    #[test]
    fn zero_size_rejected() {
        assert_eq!(BumpAllocator::new(0, 8).alloc(0), None);
    }

    #[test]
    fn covers_all_cache_sets_densely() {
        // 64-B objects from a bump allocator touch every consecutive block:
        // the uniform layout.
        let mut b = BumpAllocator::new(0, 8);
        let blocks: std::collections::HashSet<u64> =
            (0..1000).map(|_| b.alloc(64).unwrap() / 64).collect();
        assert!(blocks.len() >= 999); // dense tiling
    }
}
