//! Binary buddy allocation.

use std::collections::BTreeSet;

use crate::Allocator;

/// Minimum block size handed out (glibc-era allocators bottom out around
/// a cache line for mid-size objects; 32 keeps the model general).
const MIN_BLOCK: u64 = 32;

/// A binary buddy allocator over a power-of-two arena: every request is
/// rounded up to the next power of two, blocks split recursively on
/// allocation and coalesce with their buddy on free.
///
/// The rounding is the interesting part for the paper: a 260-byte tree
/// node occupies a 512-byte block, so node headers land on 512-byte
/// boundaries — 1/8th of the cache sets.
///
/// # Examples
///
/// ```
/// use primecache_heap::{Allocator, BuddyAllocator};
///
/// let mut b = BuddyAllocator::new(0, 1 << 16);
/// let a1 = b.alloc(260).unwrap();
/// let a2 = b.alloc(260).unwrap();
/// assert_eq!(a1 % 512, 0);
/// assert_eq!(a2 - a1, 512);
/// b.free(a1, 260);
/// b.free(a2, 260);
/// // Fully coalesced: a max-size allocation succeeds again.
/// assert!(b.alloc(1 << 16).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    base: u64,
    arena: u64,
    /// Free lists per order: `free[k]` holds offsets of free blocks of
    /// size `MIN_BLOCK << k`.
    free: Vec<BTreeSet<u64>>,
    live: u64,
}

impl BuddyAllocator {
    /// Creates a buddy allocator over `[base, base + arena_bytes)`.
    ///
    /// # Panics
    ///
    /// Panics unless `arena_bytes` is a power of two `>= MIN_BLOCK`.
    #[must_use]
    pub fn new(base: u64, arena_bytes: u64) -> Self {
        assert!(
            arena_bytes.is_power_of_two() && arena_bytes >= MIN_BLOCK,
            "arena must be a power of two >= {MIN_BLOCK}"
        );
        let orders = (arena_bytes / MIN_BLOCK).trailing_zeros() as usize + 1;
        let mut free = vec![BTreeSet::new(); orders];
        free[orders - 1].insert(0);
        Self {
            base,
            arena: arena_bytes,
            free,
            live: 0,
        }
    }

    fn order_for(&self, size: u64) -> usize {
        let block = size.max(1).next_power_of_two().max(MIN_BLOCK);
        (block / MIN_BLOCK).trailing_zeros() as usize
    }

    fn block_size(order: usize) -> u64 {
        MIN_BLOCK << order
    }

    /// Number of free blocks currently tracked (all orders).
    #[must_use]
    pub fn free_blocks(&self) -> usize {
        self.free.iter().map(BTreeSet::len).sum()
    }

    /// The arena size in bytes.
    #[must_use]
    pub fn arena_bytes(&self) -> u64 {
        self.arena
    }
}

impl Allocator for BuddyAllocator {
    fn alloc(&mut self, size: u64) -> Option<u64> {
        if size == 0 || size > self.arena {
            return None;
        }
        let want = self.order_for(size);
        // Find the smallest order >= want with a free block.
        let from = (want..self.free.len()).find(|&k| !self.free[k].is_empty())?;
        let mut offset = *self.free[from].iter().next().expect("non-empty");
        self.free[from].remove(&offset);
        // Split down to the wanted order, releasing the upper halves.
        let mut k = from;
        while k > want {
            k -= 1;
            let buddy = offset + Self::block_size(k);
            self.free[k].insert(buddy);
        }
        let _ = &mut offset; // offset stays the low half throughout
        self.live += size;
        Some(self.base + offset)
    }

    fn free(&mut self, addr: u64, size: u64) {
        let mut offset = addr - self.base;
        let mut k = self.order_for(size);
        // Coalesce with the buddy while possible.
        while k + 1 < self.free.len() {
            let buddy = offset ^ Self::block_size(k);
            if self.free[k].remove(&buddy) {
                offset = offset.min(buddy);
                k += 1;
            } else {
                break;
            }
        }
        self.free[k].insert(offset);
        self.live = self.live.saturating_sub(size);
    }

    fn live_bytes(&self) -> u64 {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_to_powers_of_two() {
        let mut b = BuddyAllocator::new(0, 1 << 16);
        for (size, align) in [(33u64, 64u64), (65, 128), (300, 512), (513, 1024)] {
            let a = b.alloc(size).unwrap();
            assert_eq!(a % align, 0, "size {size}");
        }
    }

    #[test]
    fn splits_and_coalesces_cleanly() {
        let mut b = BuddyAllocator::new(0x1000, 1 << 12);
        let first = b.alloc(500).unwrap();
        // Splitting 4 KB down to 512 leaves one free buddy per level:
        // 512, 1024, 2048.
        assert_eq!(b.free_blocks(), 3);
        let mut addrs = vec![first];
        addrs.extend((0..7).map(|_| b.alloc(500).unwrap()));
        assert_eq!(b.free_blocks(), 0);
        assert!(b.alloc(500).is_none(), "arena of 8 x 512 exhausted");
        for &a in &addrs {
            b.free(a, 500);
        }
        assert_eq!(b.free_blocks(), 1, "everything must coalesce back");
        assert_eq!(b.alloc(1 << 12), Some(0x1000));
    }

    #[test]
    fn buddy_layout_reproduces_the_tree_pathology() {
        // 260-byte "tree nodes": headers land on 512-B slots, touching
        // only every 8th 64-B cache block.
        let mut b = BuddyAllocator::new(0, 1 << 22);
        let headers: Vec<u64> = (0..1000).map(|_| b.alloc(260).unwrap() / 64).collect();
        assert!(headers.iter().all(|h| h % 8 == 0));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut b = BuddyAllocator::new(0, 1 << 10);
        let mut got = 0;
        while b.alloc(MIN_BLOCK).is_some() {
            got += 1;
        }
        assert_eq!(got, (1 << 10) / MIN_BLOCK);
        assert_eq!(b.alloc(1), None);
    }

    #[test]
    fn oversized_requests_rejected() {
        let mut b = BuddyAllocator::new(0, 1 << 10);
        assert_eq!(b.alloc((1 << 10) + 1), None);
        assert_eq!(b.alloc(0), None);
    }

    #[test]
    fn live_accounting() {
        let mut b = BuddyAllocator::new(0, 1 << 14);
        let a = b.alloc(100).unwrap();
        let c = b.alloc(200).unwrap();
        assert_eq!(b.live_bytes(), 300);
        b.free(a, 100);
        b.free(c, 200);
        assert_eq!(b.live_bytes(), 0);
    }
}
