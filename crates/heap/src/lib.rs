//! Heap-allocator models.
//!
//! The paper's most dramatic pathology (`tree`, Fig. 13) comes from a heap
//! layout: the treecode's nodes land on power-of-two allocator slots, so
//! their headers touch only a fraction of the L2 sets. This crate models
//! the allocator families that produce — or avoid — such layouts:
//!
//! * [`BumpAllocator`] — packed sequential allocation (no padding: the
//!   layout that keeps set usage uniform),
//! * [`BuddyAllocator`] — power-of-two splitting/coalescing (every object
//!   is rounded up to a power of two: the classic source of padded-struct
//!   non-uniformity),
//! * [`SizeClassAllocator`] — slab-style size classes (padding to the
//!   class size; 512-byte classes reproduce the `tree` layout exactly).
//!
//! All three implement [`Allocator`] and are deterministic, so workload
//! traces built on them are reproducible. The `allocator_effects` example
//! in the workspace root demonstrates the end-to-end effect on L2 set
//! histograms.
//!
//! # Examples
//!
//! ```
//! use primecache_heap::{Allocator, BuddyAllocator, BumpAllocator};
//!
//! let mut buddy = BuddyAllocator::new(0x1000_0000, 1 << 20);
//! let a = buddy.alloc(300).unwrap(); // rounded up to a 512-B block
//! assert_eq!(a % 512, 0);
//!
//! let mut bump = BumpAllocator::new(0x2000_0000, 8);
//! let b = bump.alloc(300).unwrap(); // packed (8-B aligned)
//! let c = bump.alloc(300).unwrap();
//! assert_eq!(c - b, 304);
//! ```

mod buddy;
mod bump;
mod size_class;

pub use buddy::BuddyAllocator;
pub use bump::BumpAllocator;
pub use size_class::SizeClassAllocator;

/// A deterministic heap-allocator model producing byte addresses.
pub trait Allocator {
    /// Allocates `size` bytes; returns the base address, or `None` when
    /// the arena is exhausted.
    fn alloc(&mut self, size: u64) -> Option<u64>;

    /// Frees an allocation previously returned by [`Allocator::alloc`].
    ///
    /// Allocators that never reuse memory (bump) may ignore this.
    fn free(&mut self, addr: u64, size: u64);

    /// Bytes currently handed out.
    fn live_bytes(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every allocator must hand out non-overlapping regions.
    fn check_no_overlap(alloc: &mut dyn Allocator, sizes: &[u64]) {
        let mut regions: Vec<(u64, u64)> = Vec::new();
        for &s in sizes {
            if let Some(a) = alloc.alloc(s) {
                for &(b, t) in &regions {
                    assert!(
                        a + s <= b || b + t <= a,
                        "overlap: [{a}, {}) vs [{b}, {})",
                        a + s,
                        b + t
                    );
                }
                regions.push((a, s));
            }
        }
    }

    #[test]
    fn all_allocators_hand_out_disjoint_regions() {
        let sizes: Vec<u64> = (1..200u64).map(|i| (i * 37) % 700 + 1).collect();
        check_no_overlap(&mut BumpAllocator::new(0, 8), &sizes);
        check_no_overlap(&mut BuddyAllocator::new(0, 1 << 20), &sizes);
        check_no_overlap(
            &mut SizeClassAllocator::new(0, &[64, 256, 512, 4096]),
            &sizes,
        );
    }
}
