//! Property-based tests of the DRAM timing model.

use primecache_check::prop::forall;
use primecache_mem::{Dram, MemConfig};

#[test]
fn latency_is_at_least_the_service_time() {
    forall(
        "latency_is_at_least_the_service_time",
        256,
        |rng| rng.vec(1, 200, |r| r.range_u64(0, 1 << 30)),
        |addrs: &Vec<u64>| {
            let cfg = MemConfig::paper_default();
            let mut dram = Dram::new(cfg);
            let mut now = 0u64;
            for &a in addrs {
                let c = dram.request(a, now, false);
                let min = if c.row_hit {
                    cfg.row_hit_cycles
                } else {
                    cfg.row_miss_cycles
                };
                assert!(c.latency >= min, "latency {} < service {min}", c.latency);
                assert_eq!(c.complete, now + c.latency);
                now += 7; // issue faster than service: forces queueing paths
            }
        },
    );
}

#[test]
fn completions_never_precede_issue() {
    forall(
        "completions_never_precede_issue",
        256,
        |rng| {
            (
                rng.vec(1, 200, |r| r.range_u64(0, 1 << 34)),
                rng.vec(1, 200, |r| r.range_u64(0, 1000)),
            )
        },
        |(addrs, gaps)| {
            if gaps.is_empty() {
                return;
            }
            let mut dram = Dram::new(MemConfig::paper_default());
            let mut now = 0u64;
            for (a, g) in addrs.iter().zip(gaps.iter().cycle()) {
                now += g;
                let c = dram.request(*a, now, false);
                assert!(c.complete > now);
            }
        },
    );
}

#[test]
fn stats_totals_match_requests() {
    forall(
        "stats_totals_match_requests",
        256,
        |rng| (rng.vec(1, 300, |r| r.range_u64(0, 1 << 26)), rng.next_u64()),
        |&(ref addrs, write_mask)| {
            let mut dram = Dram::new(MemConfig::paper_default());
            for (i, &a) in addrs.iter().enumerate() {
                dram.request(a, i as u64 * 10, (write_mask >> (i % 64)) & 1 == 1);
            }
            let s = dram.stats();
            assert_eq!(s.reads + s.writes, addrs.len() as u64);
            assert_eq!(s.row_hits + s.row_misses, addrs.len() as u64);
        },
    );
}

#[test]
fn row_hit_rate_is_one_after_warm_same_row() {
    forall(
        "row_hit_rate_is_one_after_warm_same_row",
        64,
        |rng| rng.range_usize(2, 50),
        |&reps| {
            if reps < 2 {
                return;
            }
            let mut dram = Dram::new(MemConfig::paper_default());
            let mut now = 0;
            for _ in 0..reps {
                // Same channel (line 0 and 2 are both channel 0), same row.
                let c = dram.request(0, now, false);
                now = c.complete;
            }
            assert_eq!(dram.stats().row_misses, 1);
        },
    );
}

#[test]
fn per_channel_bus_never_overlaps_transfers() {
    forall(
        "per_channel_bus_never_overlaps_transfers",
        256,
        |rng| rng.vec(2, 100, |r| r.range_u64(0, 1 << 22)),
        |addrs: &Vec<u64>| {
            // All requests to channel 0 (even lines): completions must be
            // spaced by at least the bus occupancy.
            let cfg = MemConfig::paper_default();
            let mut dram = Dram::new(cfg);
            let mut completions = Vec::new();
            for &a in addrs {
                let aligned = (a / 128) * 128; // even line => channel 0
                completions.push(dram.request(aligned, 0, false).complete);
            }
            completions.sort_unstable();
            for w in completions.windows(2) {
                assert!(
                    w[1] - w[0] >= cfg.bus_occupancy_cycles(),
                    "transfers overlap: {} then {}",
                    w[0],
                    w[1]
                );
            }
        },
    );
}
