//! Memory-system configuration (Table 3).

use serde::{Deserialize, Serialize};

/// DRAM address-mapping policy: how lines map onto channels, banks and
/// rows.
///
/// The paper's related-work section cites the DRAM-side analogue of its
/// own idea — Zhang, Zhu & Zhang's permutation-based page interleaving
/// (\[26\], MICRO 2000), which XORs tag bits into the bank index to break
/// power-of-two bank conflicts. Implementing both lets the reproduction
/// show the same pathology/remedy pair one level down the hierarchy
/// (`ablation_dram_mapping`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DramMapping {
    /// Row-linear: consecutive rows walk the banks (the classic layout;
    /// power-of-two strides collide on a single bank).
    RowInterleaved,
    /// Permutation-based (\[26\]): the bank index is XORed with low tag
    /// bits, dispersing power-of-two strides across banks.
    PermutationBased,
}

/// Timing and geometry of the memory back-end, in CPU cycles (1.6 GHz).
///
/// Defaults follow the paper's Table 3: 243-cycle row-miss and 208-cycle
/// row-hit round trips, a split-transaction 8 B/400 MHz bus (a 64-byte line
/// occupies the bus for 8 beats = 32 CPU cycles), and dual-channel DRAM.
/// The bank count and row size are not given by the paper; 8 banks per
/// channel and 4 KB rows are typical for 2003-era DDR and are noted in
/// `DESIGN.md`.
///
/// # Examples
///
/// ```
/// use primecache_mem::MemConfig;
///
/// let cfg = MemConfig::paper_default();
/// assert_eq!(cfg.row_miss_cycles, 243);
/// assert_eq!(cfg.bus_occupancy_cycles(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemConfig {
    /// Round-trip latency on a DRAM row miss (cycles).
    pub row_miss_cycles: u64,
    /// Round-trip latency on a DRAM row hit (cycles).
    pub row_hit_cycles: u64,
    /// Independent DRAM channels.
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Row-buffer size per bank, bytes (power of two).
    pub row_bytes: u64,
    /// Transferred line size, bytes.
    pub line_bytes: u64,
    /// Bus width in bytes.
    pub bus_bytes: u64,
    /// CPU cycles per bus beat (1600 MHz / 400 MHz = 4).
    pub cycles_per_beat: u64,
    /// Cycles a bank stays busy servicing a row hit (CAS + burst).
    pub bank_busy_row_hit: u64,
    /// Cycles a bank stays busy servicing a row miss (precharge +
    /// activate + CAS ≈ tRAC = 45 ns = 72 cycles at 1.6 GHz).
    pub bank_busy_row_miss: u64,
    /// How lines map to channels/banks/rows.
    pub mapping: DramMapping,
}

impl MemConfig {
    /// The paper's Table-3 memory system.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            row_miss_cycles: 243,
            row_hit_cycles: 208,
            channels: 2,
            banks_per_channel: 8,
            row_bytes: 4096,
            line_bytes: 64,
            bus_bytes: 8,
            cycles_per_beat: 4,
            bank_busy_row_hit: 24,
            bank_busy_row_miss: 72,
            mapping: DramMapping::RowInterleaved,
        }
    }

    /// The same machine with permutation-based bank interleaving (\[26\]).
    #[must_use]
    pub fn with_permutation_mapping(mut self) -> Self {
        self.mapping = DramMapping::PermutationBased;
        self
    }

    /// CPU cycles one line transfer occupies the bus.
    #[must_use]
    pub fn bus_occupancy_cycles(&self) -> u64 {
        self.line_bytes.div_ceil(self.bus_bytes) * self.cycles_per_beat
    }

    /// Total banks across channels.
    #[must_use]
    pub fn total_banks(&self) -> u32 {
        self.channels * self.banks_per_channel
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values() {
        let c = MemConfig::paper_default();
        assert_eq!(c.row_hit_cycles, 208);
        assert_eq!(c.channels, 2);
        // 64-B line over an 8-B 400 MHz bus at 1.6 GHz: 8 beats x 4 = 32.
        assert_eq!(c.bus_occupancy_cycles(), 32);
        assert_eq!(c.total_banks(), 16);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(MemConfig::default(), MemConfig::paper_default());
    }
}
