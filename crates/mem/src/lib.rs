//! DRAM and memory-bus timing model (the MEMORY half of Table 3).
//!
//! The paper's machine: round-trip memory latency of 243 cycles on a DRAM
//! row miss and 208 cycles on a row hit; a split-transaction 8-byte
//! 400 MHz memory bus (3.2 GB/s peak) in front of dual-channel DRAM
//! (2 bytes × 800 MHz per channel). This crate models that back-end with
//! per-bank open-row state and bus/bank occupancy, so L2 misses experience
//! realistic queueing and row-locality effects.
//!
//! # Examples
//!
//! ```
//! use primecache_mem::{Dram, MemConfig};
//!
//! let mut dram = Dram::new(MemConfig::paper_default());
//! let first = dram.request(0x0000, 0, false);
//! let again = dram.request(0x0040, first.complete, false);
//! assert!(first.latency >= again.latency, "second access hits the open row");
//! ```

mod config;
mod dram;

pub use config::{DramMapping, MemConfig};
pub use dram::{Completion, Dram, DramStats};
