//! Event-driven DRAM + bus model.

use serde::{Deserialize, Serialize};

#[cfg(feature = "obs")]
use primecache_obs::ObsHandle;

use crate::MemConfig;

/// Result of one memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Cycle the data round trip completes.
    pub complete: u64,
    /// Observed latency from issue (includes queueing).
    pub latency: u64,
    /// Whether the request hit an open DRAM row.
    pub row_hit: bool,
}

/// Aggregate DRAM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Read requests serviced.
    pub reads: u64,
    /// Write (writeback) requests serviced.
    pub writes: u64,
    /// Requests that hit an open row.
    pub row_hits: u64,
    /// Requests that opened a new row.
    pub row_misses: u64,
    /// Total queueing cycles (waiting for bank or bus).
    pub queue_cycles: u64,
}

impl DramStats {
    /// Fraction of requests that hit an open row.
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// Dual-channel DRAM with per-bank open rows and a split-transaction bus.
///
/// Address mapping: line-interleaved across channels, then row-interleaved
/// across banks — consecutive lines alternate channels, and consecutive
/// rows in one channel walk the banks. This is the classic layout that
/// gives streaming workloads high row-hit rates.
///
/// # Examples
///
/// ```
/// use primecache_mem::{Dram, MemConfig};
///
/// let mut dram = Dram::new(MemConfig::paper_default());
/// let c = dram.request(0, 0, false);
/// assert_eq!(c.latency, 243); // cold: every first touch is a row miss
/// ```
#[derive(Debug)]
pub struct Dram {
    config: MemConfig,
    /// Open row per (channel, bank); `u64::MAX` = closed.
    open_rows: Vec<u64>,
    /// Cycle each bank becomes free.
    bank_free: Vec<u64>,
    /// Cycle each channel's bus becomes free.
    bus_free: Vec<u64>,
    stats: DramStats,
    /// Per-request event recorder.
    #[cfg(feature = "obs")]
    obs: Option<ObsHandle>,
}

impl Dram {
    /// Creates the DRAM model.
    #[must_use]
    pub fn new(config: MemConfig) -> Self {
        let banks = config.total_banks() as usize;
        Self {
            open_rows: vec![u64::MAX; banks],
            bank_free: vec![0; banks],
            bus_free: vec![0; config.channels as usize],
            stats: DramStats::default(),
            #[cfg(feature = "obs")]
            obs: None,
            config,
        }
    }

    /// Attaches an observability recorder; every request is reported
    /// with its channel, global bank index, row-hit outcome, and
    /// queueing delay.
    #[cfg(feature = "obs")]
    pub fn attach_obs(&mut self, handle: ObsHandle) {
        self.obs = Some(handle);
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Decomposes an address into (channel, global bank index, row).
    fn map(&self, addr: u64) -> (usize, usize, u64) {
        let line = addr / self.config.line_bytes;
        let channel = (line % u64::from(self.config.channels)) as usize;
        let line_in_channel = line / u64::from(self.config.channels);
        let lines_per_row = self.config.row_bytes / self.config.line_bytes;
        let row_linear = line_in_channel / lines_per_row;
        let banks = u64::from(self.config.banks_per_channel);
        let mut bank_in_channel = row_linear % banks;
        let row = row_linear / banks;
        if self.config.mapping == crate::DramMapping::PermutationBased {
            // [26]: XOR low row (page) bits into the bank index so
            // power-of-two strides spread across banks. The row id is
            // untouched, so row locality is preserved.
            bank_in_channel ^= row % banks;
        }
        let bank = channel * self.config.banks_per_channel as usize + bank_in_channel as usize;
        (channel, bank, row)
    }

    /// Issues a request at cycle `now`; returns its completion.
    pub fn request(&mut self, addr: u64, now: u64, write: bool) -> Completion {
        let (channel, bank, row) = self.map(addr);
        let row_hit = self.open_rows[bank] == row;
        self.open_rows[bank] = row;

        let service = if row_hit {
            self.config.row_hit_cycles
        } else {
            self.config.row_miss_cycles
        };
        // Split-transaction bus: the request occupies its bank only for
        // the array access (CAS+burst, or precharge+activate+CAS on a row
        // miss), and the channel bus only for the line transfer at the
        // tail of the round trip. The round-trip `service` latency is
        // longer than either occupancy — it includes controller and
        // interconnect time that pipelines across requests.
        let bus_occ = self.config.bus_occupancy_cycles();
        let bank_busy = if row_hit {
            self.config.bank_busy_row_hit
        } else {
            self.config.bank_busy_row_miss
        };
        let start = now.max(self.bank_free[bank]);
        let tentative_complete = start + service;
        let data_start = tentative_complete
            .saturating_sub(bus_occ)
            .max(self.bus_free[channel]);
        let complete = data_start + bus_occ;
        let queue = complete - now - service;

        self.bank_free[bank] = start + bank_busy;
        self.bus_free[channel] = complete;

        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        self.stats.queue_cycles += queue;
        #[cfg(feature = "obs")]
        if let Some(h) = &self.obs {
            h.borrow_mut()
                .dram_request(channel as u32, bank as u32, row_hit, write, queue);
        }

        Completion {
            complete,
            latency: complete - now,
            row_hit,
        }
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Starts a new measurement epoch: clears statistics and the timing
    /// clocks but *keeps* the open rows — used when a warmup phase ends
    /// and the cycle counter restarts at zero.
    pub fn new_epoch(&mut self) {
        let banks = self.config.total_banks() as usize;
        self.bank_free = vec![0; banks];
        self.bus_free = vec![0; self.config.channels as usize];
        self.stats = DramStats::default();
    }

    /// Resets statistics and timing state (open rows are closed).
    pub fn reset(&mut self) {
        let banks = self.config.total_banks() as usize;
        self.open_rows = vec![u64::MAX; banks];
        self.bank_free = vec![0; banks];
        self.bus_free = vec![0; self.config.channels as usize];
        self.stats = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(MemConfig::paper_default())
    }

    #[test]
    fn cold_access_is_row_miss() {
        let mut d = dram();
        let c = d.request(0, 0, false);
        assert!(!c.row_hit);
        assert_eq!(c.latency, 243);
    }

    #[test]
    fn same_row_hits_after_first_touch() {
        let mut d = dram();
        let a = d.request(0, 0, false);
        // Same channel + row: lines 0 and 2 (line 1 goes to channel 1).
        let b = d.request(128, a.complete, false);
        assert!(b.row_hit);
        assert_eq!(b.latency, 208);
    }

    #[test]
    fn different_rows_same_bank_conflict() {
        let mut d = dram();
        let cfg = *d.config();
        // Two addresses in the same channel and bank but different rows:
        // advance by banks_per_channel rows worth of bytes x channels.
        let stride = cfg.row_bytes * u64::from(cfg.banks_per_channel) * u64::from(cfg.channels);
        let a = d.request(0, 0, false);
        let b = d.request(stride, a.complete, false);
        assert!(!b.row_hit, "same bank, new row must be a row miss");
    }

    #[test]
    fn back_to_back_requests_queue_on_the_bus() {
        let mut d = dram();
        let a = d.request(0, 0, false);
        // Immediately issue to the same channel (line 2): must wait for the
        // first transfer to release the bus.
        let b = d.request(128, 0, false);
        assert!(b.latency > a.latency, "{} vs {}", b.latency, a.latency);
        assert!(d.stats().queue_cycles > 0);
    }

    #[test]
    fn channels_overlap() {
        let mut d = dram();
        let a = d.request(0, 0, false); // channel 0
        let b = d.request(64, 0, false); // channel 1
        assert_eq!(a.latency, 243);
        assert_eq!(b.latency, 243, "different channels must not queue");
    }

    #[test]
    fn stats_track_requests() {
        let mut d = dram();
        d.request(0, 0, false);
        d.request(64, 0, true);
        d.request(128, 300, false);
        assert_eq!(d.stats().reads, 2);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().row_hits + d.stats().row_misses, 3);
        assert!(d.stats().row_hit_rate() > 0.0);
    }

    #[test]
    fn reset_clears_rows() {
        let mut d = dram();
        d.request(0, 0, false);
        d.reset();
        let c = d.request(128, 0, false);
        assert!(!c.row_hit, "reset must close open rows");
        assert_eq!(d.stats().reads, 1);
    }

    #[test]
    fn permutation_mapping_disperses_power_of_two_strides() {
        // Classic bank-conflict stride: one row apart in the same bank
        // under row-interleaving.
        let cfg = MemConfig::paper_default();
        let stride = cfg.row_bytes * u64::from(cfg.banks_per_channel) * u64::from(cfg.channels);
        let serial = {
            let mut d = Dram::new(cfg);
            let mut worst = 0u64;
            for i in 0..16u64 {
                worst = worst.max(d.request(i * stride, 0, false).latency);
            }
            worst
        };
        let permuted = {
            let mut d = Dram::new(cfg.with_permutation_mapping());
            let mut worst = 0u64;
            for i in 0..16u64 {
                worst = worst.max(d.request(i * stride, 0, false).latency);
            }
            worst
        };
        // The floor is the single-channel bus serialization (16 x 32
        // cycles); permutation removes the bank component on top of it.
        assert!(
            (permuted as f64) < serial as f64 * 0.7,
            "permutation must break the bank pileup: {permuted} vs {serial}"
        );
    }

    #[test]
    fn permutation_mapping_is_a_bijection_per_row_region() {
        // No two distinct addresses may alias to the same (bank, row,
        // line-in-row) — checked by counting distinct placements.
        let cfg = MemConfig::paper_default().with_permutation_mapping();
        let d = Dram::new(cfg);
        let mut seen = std::collections::HashSet::new();
        for line in 0..32_768u64 {
            let addr = line * cfg.line_bytes;
            let (ch, bank, row) = d.map(addr);
            let line_in_row = (addr / cfg.line_bytes / u64::from(cfg.channels))
                % (cfg.row_bytes / cfg.line_bytes);
            assert!(
                seen.insert((ch, bank, row, line_in_row)),
                "aliased placement for line {line}"
            );
        }
    }

    #[test]
    fn new_epoch_keeps_open_rows() {
        let mut d = dram();
        d.request(0, 0, false);
        d.new_epoch();
        assert_eq!(d.stats().reads, 0);
        let c = d.request(128, 0, false);
        assert!(c.row_hit, "open row must survive the epoch boundary");
    }

    #[test]
    fn streaming_gets_high_row_hit_rate() {
        let mut d = dram();
        let mut now = 0;
        for i in 0..1000u64 {
            let c = d.request(i * 64, now, false);
            now = c.complete;
        }
        assert!(
            d.stats().row_hit_rate() > 0.9,
            "{}",
            d.stats().row_hit_rate()
        );
    }
}
