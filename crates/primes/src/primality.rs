//! Deterministic primality testing for `u64`.

use crate::arith::{mod_mul, mod_pow};

/// Witness set that makes Miller–Rabin deterministic for all `u64` inputs.
///
/// Established by Sinclair (2011): testing these twelve bases is sufficient
/// for every `n < 3,317,044,064,679,887,385,961,981`.
const WITNESSES: [u64; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];

/// Returns `true` when `n` is prime.
///
/// Deterministic for the whole `u64` range: small inputs are handled by
/// trial division against a few small primes, the rest by Miller–Rabin with
/// a witness set proven sufficient below 3.3e24.
///
/// # Examples
///
/// ```
/// use primecache_primes::is_prime;
/// assert!(is_prime(2039));            // the paper's 2048-set L2 prime
/// assert!(is_prime(8191));            // Mersenne prime 2^13 - 1
/// assert!(!is_prime(2047));           // 23 * 89
/// assert!(!is_prime(1));
/// ```
#[must_use]
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // Write n-1 = d * 2^s with d odd.
    let mut d = n - 1;
    let mut s = 0u32;
    while d & 1 == 0 {
        d >>= 1;
        s += 1;
    }
    'witness: for &a in &WITNESSES {
        let mut x = mod_pow(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = mod_mul(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference trial-division check used to validate Miller–Rabin.
    fn is_prime_slow(n: u64) -> bool {
        if n < 2 {
            return false;
        }
        let mut d = 2u64;
        while d * d <= n {
            if n.is_multiple_of(d) {
                return false;
            }
            d += 1;
        }
        true
    }

    #[test]
    fn matches_trial_division_below_10000() {
        for n in 0..10_000u64 {
            assert_eq!(is_prime(n), is_prime_slow(n), "n = {n}");
        }
    }

    #[test]
    fn paper_table1_primes_are_prime() {
        for p in [251u64, 509, 1021, 2039, 4093, 8191, 16381] {
            assert!(is_prime(p), "{p} from Table 1 must be prime");
        }
    }

    #[test]
    fn mersenne_exponent_composites_detected() {
        // 2^11 - 1 = 2047 = 23*89 and 2^23 - 1 are classic pseudoprime traps.
        assert!(!is_prime((1u64 << 11) - 1));
        assert!(!is_prime((1u64 << 23) - 1));
        assert!(is_prime((1u64 << 13) - 1));
        assert!(is_prime((1u64 << 17) - 1));
        assert!(is_prime((1u64 << 19) - 1));
        assert!(is_prime((1u64 << 31) - 1));
    }

    #[test]
    fn strong_pseudoprimes_to_base_2_rejected() {
        // Strong pseudoprimes to base 2; deterministic witness set must
        // still reject them.
        for n in [2047u64, 3277, 4033, 4681, 8321, 15841, 29341] {
            assert!(!is_prime(n), "{n} is composite");
        }
    }

    #[test]
    fn large_known_primes() {
        assert!(is_prime(2_147_483_647)); // 2^31 - 1
        assert!(is_prime(18_446_744_073_709_551_557)); // largest u64 prime
        assert!(!is_prime(u64::MAX));
    }
}
