//! Number-theory substrate for prime-number cache indexing.
//!
//! This crate provides the arithmetic foundations used throughout the
//! reproduction of *"Using Prime Numbers for Cache Indexing to Eliminate
//! Conflict Misses"* (Kharbutli, Irwin, Solihin, Lee — HPCA 2004):
//!
//! * deterministic primality testing for `u64` ([`is_prime`]),
//! * prime search ([`prev_prime`], [`next_prime`]) used to pick the number
//!   of cache sets `n_set` as the largest prime below a power of two,
//! * Mersenne primes ([`mersenne_exponents`], [`is_mersenne_prime`]) for the
//!   restricted fast-modulo scheme of Yang & Yang that the paper generalizes,
//! * modular arithmetic helpers ([`gcd`], [`mod_pow`], [`mod_inv`]), and
//! * the L2 set-fragmentation computation of the paper's Table 1
//!   ([`frag::fragmentation_row`], [`frag::table1`]).
//!
//! # Examples
//!
//! ```
//! use primecache_primes::{prev_prime, is_prime};
//!
//! // The paper's running example: a 2048-set L2 uses 2039 = 2^11 - 9 sets.
//! assert_eq!(prev_prime(2048), Some(2039));
//! assert!(is_prime(2039));
//! ```

mod arith;
mod factor;
mod primality;
mod search;
mod sieve;

pub mod frag;

pub use arith::{egcd, gcd, lcm, mod_inv, mod_mul, mod_pow};
pub use factor::{factorize, totient};
pub use primality::is_prime;
pub use search::{
    is_mersenne_prime, mersenne_exponents, mersenne_primes_below, next_prime, prev_prime,
};
pub use sieve::{primes_below, Sieve};
