//! Integer factorization (trial division, u64-scale).

/// Returns the prime factorization of `n` as `(prime, exponent)` pairs in
/// ascending prime order. Returns an empty vector for `n < 2`.
///
/// Used by the modulus-choice ablation: the paper's §3.1 aside observes
/// that `n_set_phys − 1` is "often a product of two prime numbers"
/// (2047 = 23·89), making it a decent non-prime modulus.
///
/// # Examples
///
/// ```
/// use primecache_primes::factorize;
///
/// assert_eq!(factorize(2047), vec![(23, 1), (89, 1)]);
/// assert_eq!(factorize(2048), vec![(2, 11)]);
/// assert_eq!(factorize(2039), vec![(2039, 1)]);
/// assert!(factorize(1).is_empty());
/// ```
#[must_use]
pub fn factorize(mut n: u64) -> Vec<(u64, u32)> {
    let mut out = Vec::new();
    let mut push = |p: u64, e: u32| {
        if e > 0 {
            out.push((p, e));
        }
    };
    let mut e = 0;
    while n.is_multiple_of(2) {
        n /= 2;
        e += 1;
    }
    push(2, e);
    let mut d = 3u64;
    while d.saturating_mul(d) <= n {
        let mut e = 0;
        while n.is_multiple_of(d) {
            n /= d;
            e += 1;
        }
        push(d, e);
        d += 2;
    }
    if n > 1 {
        push(n, 1);
    }
    out
}

/// Euler's totient `φ(n)`: the count of residues coprime with `n` — for a
/// power of two, the number of valid prime-displacement factors.
///
/// Returns 0 for `n == 0`.
///
/// # Examples
///
/// ```
/// use primecache_primes::totient;
///
/// assert_eq!(totient(2048), 1024); // the odd residues
/// assert_eq!(totient(2039), 2038); // prime
/// assert_eq!(totient(12), 4);
/// ```
#[must_use]
pub fn totient(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut result = n;
    for (p, _) in factorize(n) {
        result = result / p * (p - 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_prime;

    #[test]
    fn factorization_reconstructs_n() {
        for n in 2..5_000u64 {
            let product: u64 = factorize(n).iter().map(|&(p, e)| p.pow(e)).product();
            assert_eq!(product, n, "n = {n}");
        }
    }

    #[test]
    fn factors_are_prime_and_sorted() {
        for n in [2047u64, 2046, 2045, 360, 1 << 20, 999_999] {
            let f = factorize(n);
            for w in f.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
            for (p, _) in f {
                assert!(is_prime(p), "{p} from factorize({n})");
            }
        }
    }

    #[test]
    fn totient_brute_force_agreement() {
        let gcd = crate::gcd;
        for n in 1..500u64 {
            let brute = (1..=n).filter(|&k| gcd(k, n) == 1).count() as u64;
            assert_eq!(totient(n), brute, "n = {n}");
        }
    }

    #[test]
    fn table1_neighbors() {
        // The §3.1 aside's example: 2047 is a semiprime.
        assert_eq!(factorize(2047).len(), 2);
        assert!(factorize(2047).iter().all(|&(_, e)| e == 1));
    }
}
