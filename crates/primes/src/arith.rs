//! Modular-arithmetic helpers.

/// Computes the greatest common divisor of `a` and `b`.
///
/// `gcd(0, 0)` is defined as `0`.
///
/// The paper's ideal-balance condition for modulo-based hashing (Property 1)
/// is `gcd(s, n_set) == 1` for a stride `s`.
///
/// # Examples
///
/// ```
/// use primecache_primes::gcd;
/// assert_eq!(gcd(12, 18), 6);
/// assert_eq!(gcd(7, 2048), 1);
/// ```
#[must_use]
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Computes the least common multiple of `a` and `b`.
///
/// Returns `0` when either argument is `0`.
///
/// # Panics
///
/// Panics if the true LCM overflows `u64`.
///
/// # Examples
///
/// ```
/// use primecache_primes::lcm;
/// assert_eq!(lcm(4, 6), 12);
/// ```
#[must_use]
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd(a, b) * b
}

/// Extended Euclidean algorithm.
///
/// Returns `(g, x, y)` such that `a*x + b*y == g == gcd(a, b)`, with the
/// Bézout coefficients as signed 128-bit integers so no overflow occurs for
/// any pair of `u64` inputs.
///
/// # Examples
///
/// ```
/// use primecache_primes::egcd;
/// let (g, x, y) = egcd(240, 46);
/// assert_eq!(g, 2);
/// assert_eq!(240 * x + 46 * y, 2);
/// ```
#[must_use]
pub fn egcd(a: u64, b: u64) -> (u64, i128, i128) {
    let (mut old_r, mut r) = (i128::from(a), i128::from(b));
    let (mut old_s, mut s) = (1i128, 0i128);
    let (mut old_t, mut t) = (0i128, 1i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
        (old_t, t) = (t, old_t - q * t);
    }
    (old_r as u64, old_s, old_t)
}

/// Computes `(a * b) mod m` without overflow.
///
/// # Panics
///
/// Panics if `m == 0`.
#[must_use]
pub fn mod_mul(a: u64, b: u64, m: u64) -> u64 {
    assert!(m != 0, "modulus must be nonzero");
    ((u128::from(a) * u128::from(b)) % u128::from(m)) as u64
}

/// Computes `base^exp mod m` by square-and-multiply.
///
/// # Panics
///
/// Panics if `m == 0`.
///
/// # Examples
///
/// ```
/// use primecache_primes::mod_pow;
/// assert_eq!(mod_pow(2, 10, 1000), 24);
/// ```
#[must_use]
pub fn mod_pow(mut base: u64, mut exp: u64, m: u64) -> u64 {
    assert!(m != 0, "modulus must be nonzero");
    if m == 1 {
        return 0;
    }
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mod_mul(acc, base, m);
        }
        base = mod_mul(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Computes the modular inverse of `a` modulo `m`, if it exists.
///
/// Returns `None` when `gcd(a, m) != 1` (no inverse). The inverse exists for
/// every nonzero residue when `m` is prime — the property that makes an odd
/// displacement factor invertible modulo a power of two (the paper's
/// footnote 2 on the "prime" displacement name).
///
/// # Examples
///
/// ```
/// use primecache_primes::mod_inv;
/// assert_eq!(mod_inv(3, 7), Some(5)); // 3*5 = 15 ≡ 1 (mod 7)
/// assert_eq!(mod_inv(2, 4), None);
/// ```
#[must_use]
pub fn mod_inv(a: u64, m: u64) -> Option<u64> {
    if m == 0 {
        return None;
    }
    let (g, x, _) = egcd(a % m, m);
    if g != 1 {
        return None;
    }
    let m_i = i128::from(m);
    Some((x.rem_euclid(m_i)) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic_identities() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(1, u64::MAX), 1);
        assert_eq!(gcd(48, 36), 12);
    }

    #[test]
    fn gcd_is_commutative() {
        for a in [2u64, 15, 100, 2039, 4096] {
            for b in [3u64, 9, 64, 509] {
                assert_eq!(gcd(a, b), gcd(b, a));
            }
        }
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(0, 7), 0);
        assert_eq!(lcm(7, 0), 0);
        assert_eq!(lcm(6, 8), 24);
        assert_eq!(lcm(2039, 2048), 2039 * 2048);
    }

    #[test]
    fn egcd_bezout_holds() {
        for (a, b) in [(240u64, 46u64), (2039, 2048), (0, 9), (9, 0), (1, 1)] {
            let (g, x, y) = egcd(a, b);
            assert_eq!(g, gcd(a, b));
            assert_eq!(i128::from(a) * x + i128::from(b) * y, i128::from(g));
        }
    }

    #[test]
    fn mod_mul_matches_wide_arithmetic() {
        let big = u64::MAX - 58;
        assert_eq!(
            mod_mul(big, big, 2039),
            ((u128::from(big) * u128::from(big)) % 2039) as u64
        );
    }

    #[test]
    fn mod_pow_fermat_little_theorem() {
        // a^(p-1) ≡ 1 (mod p) for prime p and a not divisible by p.
        for p in [2039u64, 509, 8191] {
            for a in [2u64, 3, 9, 1234567] {
                assert_eq!(mod_pow(a, p - 1, p), 1, "a={a} p={p}");
            }
        }
    }

    #[test]
    fn mod_pow_edge_cases() {
        assert_eq!(mod_pow(5, 0, 7), 1);
        assert_eq!(mod_pow(0, 5, 7), 0);
        assert_eq!(mod_pow(5, 5, 1), 0);
    }

    #[test]
    fn mod_inv_roundtrip() {
        for m in [2039u64, 2048, 509] {
            for a in 1..50u64 {
                match mod_inv(a, m) {
                    Some(inv) => assert_eq!(mod_mul(a, inv, m), 1, "a={a} m={m}"),
                    None => assert_ne!(gcd(a, m), 1, "a={a} m={m}"),
                }
            }
        }
    }

    #[test]
    fn odd_numbers_invertible_mod_power_of_two() {
        // Footnote 2: odd numbers form a multiplicative group mod 2^k.
        for a in (1u64..128).step_by(2) {
            assert!(mod_inv(a, 2048).is_some(), "odd {a} must be invertible");
        }
        for a in (2u64..128).step_by(2) {
            assert!(
                mod_inv(a, 2048).is_none(),
                "even {a} must not be invertible"
            );
        }
    }

    #[test]
    #[should_panic(expected = "modulus must be nonzero")]
    fn mod_mul_zero_modulus_panics() {
        let _ = mod_mul(1, 1, 0);
    }
}
