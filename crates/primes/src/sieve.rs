//! Sieve of Eratosthenes for bulk prime enumeration.

/// A sieve of Eratosthenes over `[0, limit)`.
///
/// Used by the workload generators and the displacement-factor ablation to
/// enumerate candidate prime factors cheaply.
///
/// # Examples
///
/// ```
/// use primecache_primes::Sieve;
/// let sieve = Sieve::new(100);
/// assert!(sieve.is_prime(97));
/// assert_eq!(sieve.iter().take(5).collect::<Vec<_>>(), [2, 3, 5, 7, 11]);
/// ```
#[derive(Debug, Clone)]
pub struct Sieve {
    limit: usize,
    composite: Vec<bool>,
}

impl Sieve {
    /// Builds a sieve covering values in `[0, limit)`.
    #[must_use]
    pub fn new(limit: usize) -> Self {
        let mut composite = vec![false; limit.max(2)];
        composite[0] = true;
        if limit > 1 {
            composite[1] = true;
        }
        let mut i = 2usize;
        while i * i < limit {
            if !composite[i] {
                let mut j = i * i;
                while j < limit {
                    composite[j] = true;
                    j += i;
                }
            }
            i += 1;
        }
        Self { limit, composite }
    }

    /// Upper bound (exclusive) of the sieved range.
    #[must_use]
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Returns `true` when `n` is prime.
    ///
    /// # Panics
    ///
    /// Panics if `n >= self.limit()`.
    #[must_use]
    pub fn is_prime(&self, n: usize) -> bool {
        assert!(n < self.limit, "{n} outside sieve range {}", self.limit);
        !self.composite[n]
    }

    /// Iterates over the primes in the sieved range, ascending.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.composite
            .iter()
            .enumerate()
            .filter(|(_, &c)| !c)
            .map(|(i, _)| i as u64)
            .filter(move |&i| (i as usize) < self.limit)
    }
}

/// Collects all primes strictly below `limit`.
///
/// # Examples
///
/// ```
/// use primecache_primes::primes_below;
/// assert_eq!(primes_below(12), vec![2, 3, 5, 7, 11]);
/// ```
#[must_use]
pub fn primes_below(limit: usize) -> Vec<u64> {
    Sieve::new(limit).iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_prime;

    #[test]
    fn agrees_with_miller_rabin() {
        let sieve = Sieve::new(5000);
        for n in 0..5000usize {
            assert_eq!(sieve.is_prime(n), is_prime(n as u64), "n = {n}");
        }
    }

    #[test]
    fn prime_counts_match_pi_function() {
        // pi(10^k) reference values.
        assert_eq!(primes_below(10).len(), 4);
        assert_eq!(primes_below(100).len(), 25);
        assert_eq!(primes_below(1_000).len(), 168);
        assert_eq!(primes_below(10_000).len(), 1_229);
    }

    #[test]
    fn tiny_sieves_do_not_panic() {
        assert!(primes_below(0).is_empty());
        assert!(primes_below(1).is_empty());
        assert!(primes_below(2).is_empty());
        assert_eq!(primes_below(3), vec![2]);
    }
}
