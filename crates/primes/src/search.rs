//! Prime search: neighbours of a value and Mersenne primes.

use crate::primality::is_prime;

/// Returns the largest prime `<= n`, or `None` when no prime exists below.
///
/// The paper chooses the number of cache sets as `prev_prime(n_set_phys)`,
/// the largest prime not exceeding the physical power-of-two set count.
///
/// # Examples
///
/// ```
/// use primecache_primes::prev_prime;
/// assert_eq!(prev_prime(2048), Some(2039));
/// assert_eq!(prev_prime(8192), Some(8191)); // a Mersenne prime: Δ = 1
/// assert_eq!(prev_prime(1), None);
/// ```
#[must_use]
pub fn prev_prime(n: u64) -> Option<u64> {
    let mut k = n;
    loop {
        if k < 2 {
            return None;
        }
        if is_prime(k) {
            return Some(k);
        }
        k -= 1;
    }
}

/// Returns the smallest prime `>= n`.
///
/// Returns `None` only if the search would overflow `u64` (no prime in
/// `[n, u64::MAX]`), which cannot happen for any `n <= 18446744073709551557`.
///
/// # Examples
///
/// ```
/// use primecache_primes::next_prime;
/// assert_eq!(next_prime(2040), Some(2053));
/// assert_eq!(next_prime(0), Some(2));
/// ```
#[must_use]
pub fn next_prime(n: u64) -> Option<u64> {
    let mut k = n.max(2);
    loop {
        if is_prime(k) {
            return Some(k);
        }
        k = k.checked_add(1)?;
    }
}

/// Returns `true` when `n` is a Mersenne prime, i.e. prime and of the form
/// `2^k - 1`.
///
/// Yang & Yang's fast cache-indexing scheme (the paper's reference \[25\])
/// only works for these; the paper's polynomial method generalizes it to
/// arbitrary primes.
///
/// # Examples
///
/// ```
/// use primecache_primes::is_mersenne_prime;
/// assert!(is_mersenne_prime(8191));   // 2^13 - 1
/// assert!(!is_mersenne_prime(2039));  // prime but 2^11 - 9
/// assert!(!is_mersenne_prime(2047));  // 2^11 - 1 but composite
/// ```
#[must_use]
pub fn is_mersenne_prime(n: u64) -> bool {
    // n = 2^k - 1  <=>  n+1 is a power of two (and n != 0).
    n != 0 && (n + 1).is_power_of_two() && is_prime(n)
}

/// Exponents `k <= 63` for which `2^k - 1` is a Mersenne prime.
///
/// # Examples
///
/// ```
/// use primecache_primes::mersenne_exponents;
/// assert!(mersenne_exponents().starts_with(&[2, 3, 5, 7, 13]));
/// ```
#[must_use]
pub fn mersenne_exponents() -> &'static [u32] {
    &[2, 3, 5, 7, 13, 17, 19, 31, 61]
}

/// All Mersenne primes strictly below `limit`.
///
/// # Examples
///
/// ```
/// use primecache_primes::mersenne_primes_below;
/// assert_eq!(mersenne_primes_below(10_000), vec![3, 7, 31, 127, 8191]);
/// ```
#[must_use]
pub fn mersenne_primes_below(limit: u64) -> Vec<u64> {
    mersenne_exponents()
        .iter()
        .map(|&k| (1u64 << k) - 1)
        .filter(|&m| m < limit)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_pairs_match_paper() {
        // (n_set_phys, n_set) pairs from the paper's Table 1.
        let pairs = [
            (256u64, 251u64),
            (512, 509),
            (1024, 1021),
            (2048, 2039),
            (4096, 4093),
            (8192, 8191),
            (16384, 16381),
        ];
        for (phys, prime) in pairs {
            assert_eq!(prev_prime(phys), Some(prime), "phys = {phys}");
        }
    }

    #[test]
    fn prev_prime_edge_cases() {
        assert_eq!(prev_prime(0), None);
        assert_eq!(prev_prime(1), None);
        assert_eq!(prev_prime(2), Some(2));
        assert_eq!(prev_prime(3), Some(3));
        assert_eq!(prev_prime(4), Some(3));
    }

    #[test]
    fn next_prime_and_prev_prime_bracket_composites() {
        for n in [4u64, 100, 2040, 4094, 1_000_000] {
            let p = prev_prime(n).unwrap();
            let q = next_prime(n).unwrap();
            assert!(p <= n && n <= q);
            for k in (p + 1)..q {
                assert!(
                    !is_prime(k),
                    "no prime may lie strictly between {p} and {q}"
                );
            }
        }
    }

    #[test]
    fn mersenne_exponents_yield_primes() {
        for &k in mersenne_exponents() {
            assert!(is_mersenne_prime((1u64 << k) - 1), "2^{k} - 1");
        }
    }

    #[test]
    fn mersenne_gaps_are_composite() {
        // Exponents *not* in the list (and prime-valued, so plausible traps).
        for k in [11u32, 23, 29, 37, 41, 43, 47, 53, 59] {
            assert!(
                !is_mersenne_prime((1u64 << k) - 1),
                "2^{k} - 1 is composite"
            );
        }
    }

    #[test]
    fn mersenne_sparseness_motivates_generalization() {
        // Between 256 and 16384 physical sets there are 7 power-of-two sizes
        // but only one Mersenne prime (8191): the paper's motivation for the
        // general polynomial method.
        let in_range: Vec<u64> = mersenne_primes_below(16_384)
            .into_iter()
            .filter(|&m| m >= 256)
            .collect();
        assert_eq!(in_range, vec![8191]);
    }
}
