//! Set fragmentation of prime-modulo indexing (the paper's Table 1).
//!
//! Using a prime number of sets `n_set < n_set_phys` wastes
//! `Δ = n_set_phys - n_set` physical sets. This module computes the wasted
//! fraction for any physical set count and reproduces Table 1.

use crate::search::prev_prime;

/// One row of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragRow {
    /// Physical (power-of-two) number of sets.
    pub n_set_phys: u64,
    /// Largest prime `<= n_set_phys`, used as the logical set count.
    pub n_set: u64,
    /// Wasted sets `Δ = n_set_phys - n_set`.
    pub delta: u64,
}

impl FragRow {
    /// Fraction of physical sets wasted, in `[0, 1)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use primecache_primes::frag::fragmentation_row;
    /// let row = fragmentation_row(2048).unwrap();
    /// assert!((row.fragmentation() - 9.0 / 2048.0).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn fragmentation(&self) -> f64 {
        self.delta as f64 / self.n_set_phys as f64
    }

    /// Fragmentation as a percentage, the unit used by Table 1.
    #[must_use]
    pub fn fragmentation_pct(&self) -> f64 {
        self.fragmentation() * 100.0
    }
}

/// Computes the fragmentation row for a physical set count.
///
/// Returns `None` when no prime `<= n_set_phys` exists (i.e. below 2).
///
/// # Examples
///
/// ```
/// use primecache_primes::frag::fragmentation_row;
/// let row = fragmentation_row(8192).unwrap();
/// assert_eq!(row.n_set, 8191);
/// assert_eq!(row.delta, 1);
/// ```
#[must_use]
pub fn fragmentation_row(n_set_phys: u64) -> Option<FragRow> {
    let n_set = prev_prime(n_set_phys)?;
    Some(FragRow {
        n_set_phys,
        n_set,
        delta: n_set_phys - n_set,
    })
}

/// The physical set counts listed in the paper's Table 1.
pub const TABLE1_PHYS_SETS: [u64; 7] = [256, 512, 1024, 2048, 4096, 8192, 16384];

/// Reproduces the paper's Table 1: fragmentation for common L2 set counts.
#[must_use]
pub fn table1() -> Vec<FragRow> {
    TABLE1_PHYS_SETS
        .iter()
        .map(|&p| fragmentation_row(p).expect("all Table 1 sizes exceed 2"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_exactly() {
        let expect = [
            (256u64, 251u64, 1.95f64),
            (512, 509, 0.59),
            (1024, 1021, 0.29),
            (2048, 2039, 0.44),
            (4096, 4093, 0.07),
            (8192, 8191, 0.01),
            (16384, 16381, 0.02),
        ];
        let rows = table1();
        assert_eq!(rows.len(), expect.len());
        for (row, (phys, prime, pct)) in rows.iter().zip(expect) {
            assert_eq!(row.n_set_phys, phys);
            assert_eq!(row.n_set, prime);
            // Paper reports two decimals; match to rounding.
            assert!(
                (row.fragmentation_pct() - pct).abs() < 0.005,
                "phys={phys}: got {:.4}%, paper says {pct}%",
                row.fragmentation_pct()
            );
        }
    }

    #[test]
    fn fragmentation_below_one_percent_from_512_sets() {
        // The paper's claim: "fragmentation falls below 1% when there are
        // 512 physical sets or more".
        for row in table1().iter().filter(|r| r.n_set_phys >= 512) {
            assert!(row.fragmentation_pct() < 1.0, "{row:?}");
        }
    }

    #[test]
    fn delta_is_small_for_all_table1_sizes() {
        // Δ is "at most 9" per the paper (within Table 1's range).
        for row in table1() {
            assert!(row.delta <= 9, "{row:?}");
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert!(fragmentation_row(0).is_none());
        assert!(fragmentation_row(1).is_none());
        let row = fragmentation_row(2).unwrap();
        assert_eq!(row.delta, 0);
        assert_eq!(row.fragmentation(), 0.0);
    }
}
