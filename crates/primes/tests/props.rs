//! Property-based tests for the number-theory substrate.

use primecache_check::prop::forall;
use primecache_primes::{
    egcd, gcd, is_prime, lcm, mod_inv, mod_mul, mod_pow, next_prime, prev_prime,
};

/// Reference trial division, valid for any u64 (slow — keep inputs small).
fn is_prime_ref(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2u64;
    while d.saturating_mul(d) <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

#[test]
fn primality_matches_trial_division() {
    forall(
        "primality_matches_trial_division",
        256,
        |rng| rng.range_u64(0, 2_000_000),
        |&n| assert_eq!(is_prime(n), is_prime_ref(n), "n = {n}"),
    );
}

#[test]
fn prev_prime_is_largest_prime_below() {
    forall(
        "prev_prime_is_largest_prime_below",
        256,
        |rng| rng.range_u64(2, 1_000_000),
        |&n| {
            let p = prev_prime(n).expect("n >= 2 always has a prime below");
            assert!(p <= n);
            assert!(is_prime(p));
            for k in (p + 1)..=n {
                assert!(!is_prime(k));
            }
        },
    );
}

#[test]
fn next_prime_is_smallest_prime_above() {
    forall(
        "next_prime_is_smallest_prime_above",
        256,
        |rng| rng.range_u64(0, 1_000_000),
        |&n| {
            let q = next_prime(n).expect("range cannot overflow");
            assert!(q >= n.max(2));
            assert!(is_prime(q));
            for k in n.max(2)..q {
                assert!(!is_prime(k));
            }
        },
    );
}

#[test]
fn gcd_divides_both_and_is_maximal() {
    forall(
        "gcd_divides_both_and_is_maximal",
        256,
        |rng| {
            (
                rng.range_u64(0, u64::MAX / 2),
                rng.range_u64(0, u64::MAX / 2),
            )
        },
        |&(a, b)| {
            let g = gcd(a, b);
            if a != 0 || b != 0 {
                assert!(g > 0);
                if a > 0 {
                    assert_eq!(a % g, 0);
                }
                if b > 0 {
                    assert_eq!(b % g, 0);
                }
            } else {
                assert_eq!(g, 0);
            }
        },
    );
}

#[test]
fn egcd_bezout_identity() {
    forall(
        "egcd_bezout_identity",
        256,
        |rng| {
            (
                rng.range_u64(0, u64::MAX / 2),
                rng.range_u64(0, u64::MAX / 2),
            )
        },
        |&(a, b)| {
            let (g, x, y) = egcd(a, b);
            assert_eq!(g, gcd(a, b));
            assert_eq!(i128::from(a) * x + i128::from(b) * y, i128::from(g));
        },
    );
}

#[test]
fn lcm_gcd_product_identity() {
    forall(
        "lcm_gcd_product_identity",
        256,
        |rng| (rng.range_u64(1, 1_000_000), rng.range_u64(1, 1_000_000)),
        |&(a, b)| {
            assert_eq!(
                u128::from(lcm(a, b)) * u128::from(gcd(a, b)),
                u128::from(a) * u128::from(b)
            );
        },
    );
}

#[test]
fn mod_mul_matches_wide() {
    forall(
        "mod_mul_matches_wide",
        256,
        |rng| (rng.next_u64(), rng.next_u64(), rng.range_u64(1, u64::MAX)),
        |&(a, b, m)| {
            let expect = ((u128::from(a) * u128::from(b)) % u128::from(m)) as u64;
            assert_eq!(mod_mul(a, b, m), expect);
        },
    );
}

#[test]
fn mod_pow_matches_iterated_mul() {
    forall(
        "mod_pow_matches_iterated_mul",
        256,
        |rng| {
            (
                rng.next_u64(),
                rng.range_u64(0, 64),
                rng.range_u64(1, u64::MAX),
            )
        },
        |&(base, exp, m)| {
            let mut expect = 1u64 % m;
            for _ in 0..exp {
                expect = mod_mul(expect, base % m, m);
            }
            assert_eq!(mod_pow(base, exp, m), expect);
        },
    );
}

#[test]
fn mod_inv_is_a_real_inverse() {
    forall(
        "mod_inv_is_a_real_inverse",
        256,
        |rng| (rng.range_u64(1, 1_000_000), rng.range_u64(2, 1_000_000)),
        |&(a, m)| match mod_inv(a, m) {
            Some(inv) => {
                assert!(inv < m);
                assert_eq!(mod_mul(a % m, inv, m), 1);
            }
            None => assert!(gcd(a, m) != 1),
        },
    );
}

#[test]
fn fermat_holds_for_table1_primes() {
    forall(
        "fermat_holds_for_table1_primes",
        256,
        |rng| rng.range_u64(1, u64::MAX),
        |&a| {
            for p in [251u64, 509, 1021, 2039, 4093, 8191, 16381] {
                if a % p != 0 {
                    assert_eq!(mod_pow(a, p - 1, p), 1);
                }
            }
        },
    );
}
