//! Property-based tests for the number-theory substrate.

use primecache_primes::{
    egcd, gcd, is_prime, lcm, mod_inv, mod_mul, mod_pow, next_prime, prev_prime,
};
use proptest::prelude::*;

/// Reference trial division, valid for any u64 (slow — keep inputs small).
fn is_prime_ref(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2u64;
    while d.saturating_mul(d) <= n {
        if n % d == 0 {
            return false;
        }
        d += 1;
    }
    true
}

proptest! {
    #[test]
    fn primality_matches_trial_division(n in 0u64..2_000_000) {
        prop_assert_eq!(is_prime(n), is_prime_ref(n));
    }

    #[test]
    fn prev_prime_is_largest_prime_below(n in 2u64..1_000_000) {
        let p = prev_prime(n).expect("n >= 2 always has a prime below");
        prop_assert!(p <= n);
        prop_assert!(is_prime(p));
        for k in (p + 1)..=n {
            prop_assert!(!is_prime(k));
        }
    }

    #[test]
    fn next_prime_is_smallest_prime_above(n in 0u64..1_000_000) {
        let q = next_prime(n).expect("range cannot overflow");
        prop_assert!(q >= n.max(2));
        prop_assert!(is_prime(q));
        for k in n.max(2)..q {
            prop_assert!(!is_prime(k));
        }
    }

    #[test]
    fn gcd_divides_both_and_is_maximal(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let g = gcd(a, b);
        if a != 0 || b != 0 {
            prop_assert!(g > 0);
            if a > 0 { prop_assert_eq!(a % g, 0); }
            if b > 0 { prop_assert_eq!(b % g, 0); }
        } else {
            prop_assert_eq!(g, 0);
        }
    }

    #[test]
    fn egcd_bezout_identity(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let (g, x, y) = egcd(a, b);
        prop_assert_eq!(g, gcd(a, b));
        prop_assert_eq!(i128::from(a) * x + i128::from(b) * y, i128::from(g));
    }

    #[test]
    fn lcm_gcd_product_identity(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        prop_assert_eq!(u128::from(lcm(a, b)) * u128::from(gcd(a, b)),
                        u128::from(a) * u128::from(b));
    }

    #[test]
    fn mod_mul_matches_wide(a: u64, b: u64, m in 1u64..u64::MAX) {
        let expect = ((u128::from(a) * u128::from(b)) % u128::from(m)) as u64;
        prop_assert_eq!(mod_mul(a, b, m), expect);
    }

    #[test]
    fn mod_pow_matches_iterated_mul(base: u64, exp in 0u64..64, m in 1u64..u64::MAX) {
        let mut expect = 1u64 % m;
        for _ in 0..exp {
            expect = mod_mul(expect, base % m, m);
        }
        prop_assert_eq!(mod_pow(base, exp, m), expect);
    }

    #[test]
    fn mod_inv_is_a_real_inverse(a in 1u64..1_000_000, m in 2u64..1_000_000) {
        match mod_inv(a, m) {
            Some(inv) => {
                prop_assert!(inv < m);
                prop_assert_eq!(mod_mul(a % m, inv, m), 1);
            }
            None => prop_assert!(gcd(a, m) != 1),
        }
    }

    #[test]
    fn fermat_holds_for_table1_primes(a in 1u64..u64::MAX) {
        for p in [251u64, 509, 1021, 2039, 4093, 8191, 16381] {
            if a % p != 0 {
                prop_assert_eq!(mod_pow(a, p - 1, p), 1);
            }
        }
    }
}
