//! Dependency-free SVG rendering for the reproduction's figures.
//!
//! The bench harness prints every figure as text; this crate additionally
//! renders them as standalone SVG files (`figures_svg` binary in
//! `primecache-bench`) so the reproduction's Figs. 5–13 can be compared
//! with the paper's visually:
//!
//! * [`Svg`] — a minimal SVG document builder (rects, lines, polylines,
//!   text, with XML escaping),
//! * [`LineChart`] — multi-series line plots (Figs. 5/6),
//! * [`BarChart`] — grouped, optionally stacked, bar plots
//!   (Figs. 7–12 and the Fig. 13 histograms).
//!
//! # Examples
//!
//! ```
//! use primecache_viz::{LineChart, Series};
//!
//! let chart = LineChart::new("balance vs stride", "stride", "balance")
//!     .with_series(Series::new("pMod", vec![(1.0, 1.0), (2.0, 1.0)]));
//! let svg = chart.render(640, 400);
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("pMod"));
//! ```

mod chart;
mod svg;

pub use chart::{BarChart, BarGroup, LineChart, Series, PALETTE};
pub use svg::Svg;
