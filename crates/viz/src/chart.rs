//! Line and bar charts rendered to SVG.

use crate::Svg;

/// Default categorical palette (colour-blind-safe Okabe–Ito-ish).
pub const PALETTE: [&str; 6] = [
    "#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9",
];

const MARGIN_L: f64 = 56.0;
const MARGIN_R: f64 = 12.0;
const MARGIN_T: f64 = 28.0;
const MARGIN_B: f64 = 44.0;

/// One named line-chart series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    name: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a named series.
    #[must_use]
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            name: name.into(),
            points,
        }
    }
}

/// A multi-series line chart (used for Figs. 5 and 6).
///
/// # Examples
///
/// ```
/// use primecache_viz::{LineChart, Series};
///
/// let svg = LineChart::new("t", "x", "y")
///     .with_series(Series::new("a", vec![(0.0, 0.0), (1.0, 2.0)]))
///     .render(320, 200);
/// assert!(svg.contains("polyline"));
/// ```
#[derive(Debug, Clone)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
    y_cap: Option<f64>,
}

impl LineChart {
    /// Creates an empty chart with labels.
    #[must_use]
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            y_cap: None,
        }
    }

    /// Adds a series.
    #[must_use]
    pub fn with_series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Caps the y axis (the paper caps Fig. 5 at balance 10).
    #[must_use]
    pub fn with_y_cap(mut self, cap: f64) -> Self {
        self.y_cap = Some(cap);
        self
    }

    /// Renders to an SVG string of the given pixel size.
    #[must_use]
    pub fn render(&self, width: u32, height: u32) -> String {
        let mut doc = Svg::new(width, height);
        let (w, h) = (f64::from(width), f64::from(height));
        let plot_w = w - MARGIN_L - MARGIN_R;
        let plot_h = h - MARGIN_T - MARGIN_B;

        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .map(|(x, y)| (x, self.y_cap.map_or(y, |c| y.min(c))))
            .collect();
        let (x_min, x_max) = min_max(all.iter().map(|p| p.0));
        let (_, y_max) = min_max(all.iter().map(|p| p.1));
        let y_max = y_max.max(1e-9);
        let x_span = (x_max - x_min).max(1e-9);

        let sx = |x: f64| MARGIN_L + (x - x_min) / x_span * plot_w;
        let sy = |y: f64| MARGIN_T + plot_h - (y.min(y_max) / y_max) * plot_h;

        draw_frame(&mut doc, w, h, &self.title, &self.x_label, &self.y_label);
        // y ticks: 0, half, max.
        for frac in [0.0, 0.5, 1.0] {
            let val = y_max * frac;
            let y = sy(val);
            doc.line(MARGIN_L - 4.0, y, MARGIN_L, y, "#333333", 1.0);
            doc.text(MARGIN_L - 6.0, y + 3.0, 9.0, "end", &format!("{val:.1}"));
        }
        // x ticks: min, mid, max.
        for frac in [0.0, 0.5, 1.0] {
            let val = x_min + x_span * frac;
            let x = sx(val);
            doc.line(x, h - MARGIN_B, x, h - MARGIN_B + 4.0, "#333333", 1.0);
            doc.text(x, h - MARGIN_B + 14.0, 9.0, "middle", &format!("{val:.0}"));
        }
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let pts: Vec<(f64, f64)> = s
                .points
                .iter()
                .map(|&(x, y)| (sx(x), sy(self.y_cap.map_or(y, |c| y.min(c)))))
                .collect();
            doc.polyline(&pts, color, 1.2);
            // Legend entry.
            let lx = MARGIN_L + 8.0 + i as f64 * 90.0;
            doc.line(lx, MARGIN_T + 6.0, lx + 16.0, MARGIN_T + 6.0, color, 2.0);
            doc.text(lx + 20.0, MARGIN_T + 9.0, 9.0, "start", &s.name);
        }
        doc.finish()
    }
}

/// One group of bars (an application) in a [`BarChart`].
#[derive(Debug, Clone)]
pub struct BarGroup {
    label: String,
    /// One value per scheme; for stacked charts each value is the segment
    /// list.
    bars: Vec<Vec<f64>>,
}

impl BarGroup {
    /// A group of simple bars.
    #[must_use]
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        Self {
            label: label.into(),
            bars: values.into_iter().map(|v| vec![v]).collect(),
        }
    }

    /// A group of stacked bars (each bar is a list of segments).
    #[must_use]
    pub fn stacked(label: impl Into<String>, bars: Vec<Vec<f64>>) -> Self {
        Self {
            label: label.into(),
            bars,
        }
    }
}

/// A grouped (optionally stacked) bar chart — Figs. 7–12.
///
/// # Examples
///
/// ```
/// use primecache_viz::{BarChart, BarGroup};
///
/// let svg = BarChart::new("misses", "normalized", &["Base", "pMod"])
///     .with_group(BarGroup::new("tree", vec![1.0, 0.04]))
///     .render(400, 240);
/// assert!(svg.contains("tree"));
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    y_label: String,
    bar_names: Vec<String>,
    groups: Vec<BarGroup>,
    y_max_override: Option<f64>,
}

impl BarChart {
    /// Creates an empty chart; `bar_names` label the bars within each
    /// group (legend).
    #[must_use]
    pub fn new(title: impl Into<String>, y_label: impl Into<String>, bar_names: &[&str]) -> Self {
        Self {
            title: title.into(),
            y_label: y_label.into(),
            bar_names: bar_names.iter().map(|s| (*s).to_owned()).collect(),
            groups: Vec::new(),
            y_max_override: None,
        }
    }

    /// Fixes the y-axis maximum (for visually comparable chart pairs,
    /// e.g. Figs. 13a/13b).
    #[must_use]
    pub fn with_y_max(mut self, y_max: f64) -> Self {
        self.y_max_override = Some(y_max);
        self
    }

    /// Adds a group.
    #[must_use]
    pub fn with_group(mut self, g: BarGroup) -> Self {
        self.groups.push(g);
        self
    }

    /// Renders to an SVG string of the given pixel size.
    #[must_use]
    pub fn render(&self, width: u32, height: u32) -> String {
        let mut doc = Svg::new(width, height);
        let (w, h) = (f64::from(width), f64::from(height));
        let plot_w = w - MARGIN_L - MARGIN_R;
        let plot_h = h - MARGIN_T - MARGIN_B;
        let y_max = self
            .y_max_override
            .unwrap_or_else(|| {
                self.groups
                    .iter()
                    .flat_map(|g| g.bars.iter())
                    .map(|segs| segs.iter().sum::<f64>())
                    .fold(0.0f64, f64::max)
            })
            .max(1e-9);

        draw_frame(&mut doc, w, h, &self.title, "", &self.y_label);
        for frac in [0.0, 0.5, 1.0] {
            let val = y_max * frac;
            let y = MARGIN_T + plot_h - frac * plot_h;
            doc.line(MARGIN_L - 4.0, y, MARGIN_L, y, "#333333", 1.0);
            doc.text(MARGIN_L - 6.0, y + 3.0, 9.0, "end", &format!("{val:.2}"));
        }
        // Reference line at 1.0 (the Base level) when it is in range.
        if y_max >= 1.0 {
            let y = MARGIN_T + plot_h - (1.0 / y_max) * plot_h;
            doc.line(MARGIN_L, y, w - MARGIN_R, y, "#999999", 0.6);
        }

        let n_groups = self.groups.len().max(1) as f64;
        let group_w = plot_w / n_groups;
        let bars_per = self
            .groups
            .iter()
            .map(|g| g.bars.len())
            .max()
            .unwrap_or(1)
            .max(1) as f64;
        let bar_w = (group_w * 0.8) / bars_per;
        for (gi, g) in self.groups.iter().enumerate() {
            let gx = MARGIN_L + gi as f64 * group_w + group_w * 0.1;
            for (bi, segs) in g.bars.iter().enumerate() {
                let x = gx + bi as f64 * bar_w;
                let mut acc = 0.0;
                for (si, &v) in segs.iter().enumerate() {
                    let y0 = MARGIN_T + plot_h - (acc / y_max) * plot_h;
                    let bh = (v / y_max) * plot_h;
                    // Stacked charts colour by segment; simple charts by bar.
                    let color = if segs.len() > 1 {
                        PALETTE[si % PALETTE.len()]
                    } else {
                        PALETTE[bi % PALETTE.len()]
                    };
                    doc.rect(x, y0 - bh, bar_w.max(1.0) - 1.0, bh, color);
                    acc += v;
                }
            }
            doc.text(
                gx + group_w * 0.4,
                h - MARGIN_B + 14.0,
                9.0,
                "middle",
                &g.label,
            );
        }
        // Legend.
        for (i, name) in self.bar_names.iter().enumerate() {
            let lx = MARGIN_L + 8.0 + i as f64 * 90.0;
            doc.rect(lx, MARGIN_T + 2.0, 10.0, 8.0, PALETTE[i % PALETTE.len()]);
            doc.text(lx + 14.0, MARGIN_T + 9.0, 9.0, "start", name);
        }
        doc.finish()
    }
}

fn min_max(vals: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in vals {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo > hi {
        (0.0, 1.0)
    } else {
        (lo, hi)
    }
}

fn draw_frame(doc: &mut Svg, w: f64, h: f64, title: &str, x_label: &str, y_label: &str) {
    doc.text(w / 2.0, 16.0, 12.0, "middle", title);
    // Axes.
    doc.line(MARGIN_L, MARGIN_T, MARGIN_L, h - MARGIN_B, "#333333", 1.0);
    doc.line(
        MARGIN_L,
        h - MARGIN_B,
        w - MARGIN_R,
        h - MARGIN_B,
        "#333333",
        1.0,
    );
    if !x_label.is_empty() {
        doc.text(w / 2.0, h - 8.0, 10.0, "middle", x_label);
    }
    if !y_label.is_empty() {
        doc.vtext(14.0, h / 2.0, 10.0, y_label);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_draws_every_series() {
        let svg = LineChart::new("t", "x", "y")
            .with_series(Series::new("alpha", vec![(0.0, 1.0), (10.0, 5.0)]))
            .with_series(Series::new("beta", vec![(0.0, 2.0), (10.0, 1.0)]))
            .render(400, 300);
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("alpha") && svg.contains("beta"));
    }

    #[test]
    fn y_cap_limits_the_axis() {
        let capped = LineChart::new("t", "x", "y")
            .with_series(Series::new("s", vec![(0.0, 1.0), (1.0, 1000.0)]))
            .with_y_cap(10.0)
            .render(300, 200);
        // The top tick is the cap, not the raw max.
        assert!(capped.contains(">10.0<"), "{capped}");
    }

    #[test]
    fn bar_chart_draws_all_bars() {
        let svg = BarChart::new("t", "y", &["a", "b", "c"])
            .with_group(BarGroup::new("g1", vec![1.0, 0.5, 0.25]))
            .with_group(BarGroup::new("g2", vec![0.9, 0.8, 0.7]))
            .render(500, 300);
        // 6 bars + legend swatches (3) + background rect.
        assert_eq!(svg.matches("<rect").count(), 6 + 3 + 1);
        assert!(svg.contains("g1") && svg.contains("g2"));
    }

    #[test]
    fn stacked_bars_accumulate() {
        let svg = BarChart::new("t", "y", &["busy", "other", "mem"])
            .with_group(BarGroup::stacked("app", vec![vec![0.3, 0.1, 0.6]]))
            .render(300, 200);
        assert_eq!(svg.matches("<rect").count(), 3 + 3 + 1);
    }

    #[test]
    fn shared_y_max_scales_bars_consistently() {
        let small = BarChart::new("t", "y", &["a"])
            .with_group(BarGroup::new("g", vec![1.0]))
            .with_y_max(10.0)
            .render(200, 150);
        let auto = BarChart::new("t", "y", &["a"])
            .with_group(BarGroup::new("g", vec![1.0]))
            .render(200, 150);
        // With the override the top tick reads 10, not 1.
        assert!(small.contains(">10.00<"), "{small}");
        assert!(auto.contains(">1.00<"));
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let _ = LineChart::new("t", "x", "y").render(100, 80);
        let _ = BarChart::new("t", "y", &[]).render(100, 80);
        let _ = BarChart::new("t", "y", &["a"])
            .with_group(BarGroup::new("g", vec![0.0]))
            .render(100, 80);
    }
}
