//! Minimal SVG document builder.

use std::fmt::Write as _;

/// An SVG document under construction.
///
/// Coordinates are in user units; the document carries an explicit
/// `width`/`height` and a matching `viewBox`.
///
/// # Examples
///
/// ```
/// use primecache_viz::Svg;
///
/// let mut doc = Svg::new(100, 50);
/// doc.rect(10.0, 10.0, 30.0, 20.0, "#4477aa");
/// doc.text(5.0, 45.0, 12.0, "start", "hello & goodbye");
/// let s = doc.finish();
/// assert!(s.contains("&amp;"));
/// assert!(s.ends_with("</svg>\n"));
/// ```
#[derive(Debug)]
pub struct Svg {
    width: u32,
    height: u32,
    body: String,
}

/// Escapes XML-special characters in text content.
fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

impl Svg {
    /// Creates an empty document of the given pixel size.
    #[must_use]
    pub fn new(width: u32, height: u32) -> Self {
        Self {
            width,
            height,
            body: String::new(),
        }
    }

    /// Adds a filled rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) {
        let _ = writeln!(
            self.body,
            r#"  <rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{}"/>"#,
            escape(fill)
        );
    }

    /// Adds a stroked line.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = writeln!(
            self.body,
            r#"  <line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{}" stroke-width="{width:.2}"/>"#,
            escape(stroke)
        );
    }

    /// Adds an unfilled polyline through the given points.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) {
        if points.is_empty() {
            return;
        }
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.2},{y:.2}"))
            .collect();
        let _ = writeln!(
            self.body,
            r#"  <polyline points="{}" fill="none" stroke="{}" stroke-width="{width:.2}"/>"#,
            pts.join(" "),
            escape(stroke)
        );
    }

    /// Adds a text label. `anchor` is `start`, `middle`, or `end`.
    pub fn text(&mut self, x: f64, y: f64, size: f64, anchor: &str, content: &str) {
        let _ = writeln!(
            self.body,
            r#"  <text x="{x:.2}" y="{y:.2}" font-size="{size:.1}" font-family="sans-serif" text-anchor="{}">{}</text>"#,
            escape(anchor),
            escape(content)
        );
    }

    /// Adds a text label rotated 90° counter-clockwise around its anchor.
    pub fn vtext(&mut self, x: f64, y: f64, size: f64, content: &str) {
        let _ = writeln!(
            self.body,
            r#"  <text x="{x:.2}" y="{y:.2}" font-size="{size:.1}" font-family="sans-serif" text-anchor="middle" transform="rotate(-90 {x:.2} {y:.2})">{}</text>"#,
            escape(content)
        );
    }

    /// Document width in pixels.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Document height in pixels.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Finishes the document and returns the SVG text.
    #[must_use]
    pub fn finish(self) -> String {
        format!(
            concat!(
                r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" "#,
                r#"viewBox="0 0 {w} {h}">"#,
                "\n  <rect x=\"0\" y=\"0\" width=\"{w}\" height=\"{h}\" fill=\"white\"/>\n",
                "{body}</svg>\n"
            ),
            w = self.width,
            h = self.height,
            body = self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure() {
        let mut d = Svg::new(200, 100);
        d.rect(0.0, 0.0, 10.0, 10.0, "red");
        d.line(0.0, 0.0, 5.0, 5.0, "black", 1.0);
        d.polyline(&[(0.0, 0.0), (1.0, 2.0)], "blue", 0.5);
        d.text(1.0, 1.0, 10.0, "middle", "label");
        let s = d.finish();
        assert!(s.starts_with("<svg"));
        assert!(s.ends_with("</svg>\n"));
        for tag in ["<rect", "<line", "<polyline", "<text"] {
            assert!(s.contains(tag), "{tag}");
        }
    }

    #[test]
    fn content_is_escaped() {
        let mut d = Svg::new(10, 10);
        d.text(0.0, 0.0, 8.0, "start", r#"<&">"#);
        let s = d.finish();
        assert!(s.contains("&lt;&amp;&quot;&gt;"));
        assert!(!s.contains(r#">"<"#));
    }

    #[test]
    fn empty_polyline_is_elided() {
        let mut d = Svg::new(10, 10);
        d.polyline(&[], "red", 1.0);
        assert!(!d.finish().contains("<polyline"));
    }

    #[test]
    fn balanced_tags() {
        let mut d = Svg::new(10, 10);
        for i in 0..5 {
            d.text(0.0, f64::from(i), 8.0, "start", "x");
        }
        let s = d.finish();
        assert_eq!(s.matches("<text").count(), s.matches("</text>").count());
        assert_eq!(s.matches("<svg").count(), 1);
    }
}
