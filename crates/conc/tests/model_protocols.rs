//! Exhaustive model checks of the two shipped concurrent protocols —
//! the streaming chunk channel and the sweep claim cursor — plus the
//! seeded-bug demos proving the checker catches the failure classes it
//! exists for.
//!
//! These are the same checks `pcache conc-check` and `ci/conc_smoke.sh`
//! run; here each one is a separate test with its expectation asserted.

use primecache_conc::model::ViolationKind;
use primecache_conc::self_check::{checks, find};
use primecache_conc::Checker;

fn run(name: &str) -> (bool, primecache_conc::Report) {
    let check = find(name).unwrap_or_else(|| panic!("unknown check {name}"));
    let report = check.run(&Checker::default());
    assert!(
        !report.truncated,
        "{name}: exploration truncated at {} schedules — raise max_schedules",
        report.schedules
    );
    (check.passed(&report), report)
}

#[test]
fn stream_delivery_is_schedule_invariant() {
    let (passed, report) = run("stream-delivery");
    assert!(passed, "{:?}", report.violation);
    assert!(
        report.schedules > 1,
        "producer/consumer must admit multiple schedules, got {}",
        report.schedules
    );
}

#[test]
fn stream_early_drop_always_unwinds_and_joins_producer() {
    let (passed, report) = run("stream-early-drop");
    assert!(passed, "{:?}", report.violation);
    assert!(report.schedules > 1, "got {}", report.schedules);
}

#[test]
fn sweep_runs_every_task_exactly_once_under_all_schedules() {
    let (passed, report) = run("sweep-exactly-once");
    assert!(passed, "{:?}", report.violation);
    assert!(
        report.schedules > 10,
        "two workers racing a cursor must admit many schedules, got {}",
        report.schedules
    );
}

#[test]
fn checker_catches_lost_tail_consumer_bug() {
    let (passed, report) = run("stream-lost-tail-bug");
    assert!(passed, "checker missed the seeded lost-tail bug");
    let v = report.violation.expect("expected a violation");
    assert!(
        matches!(&v.kind, ViolationKind::Panic { message, .. } if message.contains("tail items lost")),
        "unexpected violation: {}",
        v.kind
    );
    assert!(v.seed.starts_with("pb"), "seed: {}", v.seed);
    assert!(!v.trace.is_empty(), "violation must carry a schedule trace");
}

#[test]
fn checker_catches_racy_claim_cursor_bug() {
    let (passed, report) = run("sweep-racy-cursor-bug");
    assert!(passed, "checker missed the seeded racy-cursor bug");
    let v = report.violation.expect("expected a violation");
    assert!(
        matches!(&v.kind, ViolationKind::Panic { message, .. } if message.contains("slot written twice")),
        "unexpected violation: {}",
        v.kind
    );
}

#[test]
fn seeded_bug_replays_from_printed_seed() {
    // The workflow a failing CI run prescribes: take the seed from the
    // report, replay exactly that schedule, observe the same violation.
    let check = find("sweep-racy-cursor-bug").expect("check exists");
    let checker = Checker::default();
    let report = check.run(&checker);
    let violation = report.violation.expect("bug found");
    let replayed = check.replay(&checker, &violation.seed);
    let rv = replayed.violation.expect("replay reproduces the violation");
    assert_eq!(rv.kind, violation.kind, "replay diverged from the original");
    assert_eq!(
        replayed.schedules, 1,
        "replay must execute exactly one schedule"
    );
}

#[test]
fn whole_suite_agrees_with_expectations() {
    for check in checks() {
        let report = check.run(&Checker::default());
        assert!(
            check.passed(&report),
            "{}: expected {} but got {:?} ({} schedules)",
            check.name,
            if check.expect_violation {
                "a violation"
            } else {
                "clean"
            },
            report.violation,
            report.schedules
        );
    }
}
