//! Production backend: `#[inline]` wrappers over `std::sync`.
//!
//! Every method forwards directly to the `std` primitive the
//! pre-facade code used, so a protocol instantiated with
//! [`StdBackend`] compiles to the same machine code as before the
//! port — the throughput gate (`BENCH_baseline.json`) pins this.

use std::sync::mpsc;

use crate::api::{self, Backend, JoinApi, MutexApi, Panicked, ReceiverApi, SenderApi, TryRecv};

/// The production sync backend.
#[derive(Debug, Clone, Copy)]
pub enum StdBackend {}

/// Sending half of a bounded SPSC channel (wraps [`mpsc::SyncSender`]).
#[derive(Debug)]
pub struct Sender<T>(mpsc::SyncSender<T>);

/// Receiving half of a bounded SPSC channel (wraps [`mpsc::Receiver`]).
#[derive(Debug)]
pub struct Receiver<T>(mpsc::Receiver<T>);

/// Creates a bounded SPSC channel of `depth` slots.
///
/// The halves are deliberately not `Clone`: single producer, single
/// consumer is the shape both verified protocols assume.
#[must_use]
pub fn spsc<T: Send>(depth: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(depth);
    (Sender(tx), Receiver(rx))
}

impl<T: Send> SenderApi<T> for Sender<T> {
    #[inline]
    fn send(&self, value: T) -> Result<(), T> {
        self.0.send(value).map_err(|e| e.0)
    }
}

impl<T: Send> ReceiverApi<T> for Receiver<T> {
    #[inline]
    fn try_recv(&self) -> TryRecv<T> {
        match self.0.try_recv() {
            Ok(v) => TryRecv::Item(v),
            Err(mpsc::TryRecvError::Empty) => TryRecv::Empty,
            Err(mpsc::TryRecvError::Disconnected) => TryRecv::Disconnected,
        }
    }

    #[inline]
    fn recv(&self) -> Option<T> {
        self.0.recv().ok()
    }
}

/// Scoped-access mutex (wraps [`std::sync::Mutex`]).
///
/// Poisoning is absorbed: a panic inside `with` on another thread does
/// not cascade into every later accessor — the sweep scheduler's slot
/// protocol treats the data as valid (each slot is written exactly
/// once, which the model checker verifies).
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex.
    #[must_use]
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    #[must_use]
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Send> MutexApi<T> for Mutex<T> {
    #[inline]
    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self
            .0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut guard)
    }
}

/// Atomic claim counter (wraps [`std::sync::atomic::AtomicUsize`]).
#[derive(Debug, Default)]
pub struct AtomicUsize(std::sync::atomic::AtomicUsize);

impl AtomicUsize {
    /// Creates a counter.
    #[must_use]
    pub fn new(value: usize) -> Self {
        Self(std::sync::atomic::AtomicUsize::new(value))
    }
}

impl api::AtomicUsizeApi for AtomicUsize {
    #[inline]
    fn fetch_add(&self, n: usize) -> usize {
        self.0.fetch_add(n, std::sync::atomic::Ordering::Relaxed)
    }

    #[inline]
    fn load(&self) -> usize {
        self.0.load(std::sync::atomic::Ordering::Acquire)
    }

    #[inline]
    fn store(&self, value: usize) {
        self.0.store(value, std::sync::atomic::Ordering::Release)
    }
}

/// Thread handle (wraps [`std::thread::JoinHandle`]).
#[derive(Debug)]
pub struct JoinHandle(std::thread::JoinHandle<()>);

impl JoinApi for JoinHandle {
    #[inline]
    fn join(self) -> Result<(), Panicked> {
        self.0.join().map_err(|_| Panicked)
    }
}

impl Backend for StdBackend {
    type Sender<T: Send + 'static> = Sender<T>;
    type Receiver<T: Send + 'static> = Receiver<T>;
    type Mutex<T: Send + 'static> = Mutex<T>;
    type AtomicUsize = AtomicUsize;
    type JoinHandle = JoinHandle;

    #[inline]
    fn spsc<T: Send + 'static>(depth: usize) -> (Sender<T>, Receiver<T>) {
        spsc(depth)
    }

    #[inline]
    fn mutex<T: Send + 'static>(value: T) -> Mutex<T> {
        Mutex::new(value)
    }

    #[inline]
    fn atomic_usize(value: usize) -> AtomicUsize {
        AtomicUsize::new(value)
    }

    fn spawn<F: FnOnce() + Send + 'static>(name: &str, f: F) -> JoinHandle {
        JoinHandle(
            std::thread::Builder::new()
                .name(name.to_owned())
                .spawn(f)
                .expect("spawn facade thread"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::AtomicUsizeApi;

    #[test]
    fn spsc_round_trips_in_order() {
        let (tx, rx) = spsc::<u32>(2);
        let h = StdBackend::spawn("tx", move || {
            for i in 0..10 {
                tx.send(i).expect("receiver alive");
            }
        });
        let got: Vec<u32> = std::iter::from_fn(|| rx.recv()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(h.join().is_ok());
    }

    #[test]
    fn send_returns_value_after_receiver_drop() {
        let (tx, rx) = spsc::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(7));
    }

    #[test]
    fn try_recv_reports_all_three_states() {
        let (tx, rx) = spsc::<u32>(1);
        assert_eq!(rx.try_recv(), TryRecv::Empty);
        tx.send(3).expect("receiver alive");
        assert_eq!(rx.try_recv(), TryRecv::Item(3));
        drop(tx);
        assert_eq!(rx.try_recv(), TryRecv::Disconnected);
    }

    #[test]
    fn mutex_with_and_into_inner() {
        let m = Mutex::new(5u64);
        m.with(|v| *v += 1);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn atomic_counter_claims_unique_indices() {
        let a = AtomicUsize::new(0);
        assert_eq!(a.fetch_add(1), 0);
        assert_eq!(a.fetch_add(1), 1);
        assert_eq!(a.load(), 2);
        a.store(9);
        assert_eq!(a.load(), 9);
    }

    #[test]
    fn join_reports_panics_without_propagating() {
        let h = StdBackend::spawn("boom", || panic!("contained"));
        assert_eq!(h.join(), Err(Panicked));
    }
}
