//! The sync facade: one trait family, two backends.
//!
//! Production code (the streaming trace engine, the sweep scheduler)
//! is written against these traits and instantiated with
//! [`crate::sync::StdBackend`], whose methods are `#[inline]` wrappers
//! over `std` — the compiled protocol is exactly the pre-facade code.
//! The model checker instantiates the *same* protocol source with
//! [`crate::model::ModelBackend`], whose primitives hand every
//! operation to a cooperative scheduler that explores interleavings.

/// Outcome of a non-blocking channel receive.
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecv<T> {
    /// A value was waiting in the channel.
    Item(T),
    /// The channel is currently empty but the sender is still alive.
    Empty,
    /// The channel is empty and the sender is gone.
    Disconnected,
}

/// Sending half of a bounded single-producer/single-consumer channel.
pub trait SenderApi<T: Send>: Send {
    /// Blocks while the channel is full. Returns the value back when the
    /// receiver is gone — the producer's signal to stop generating.
    ///
    /// # Errors
    ///
    /// `Err(value)` when the receiving half has been dropped.
    fn send(&self, value: T) -> Result<(), T>;
}

/// Receiving half of a bounded SPSC channel.
pub trait ReceiverApi<T: Send> {
    /// Non-blocking receive, used to *observe* back-pressure before
    /// committing to a blocking pull.
    fn try_recv(&self) -> TryRecv<T>;

    /// Blocks until a value arrives; `None` once the channel is empty
    /// and the sender is gone.
    fn recv(&self) -> Option<T>;
}

/// A mutex that only exposes scoped access, so a lock can never be held
/// across another facade operation.
pub trait MutexApi<T>: Sync {
    /// Runs `f` with the lock held.
    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R;
}

/// The atomic claim counter of the work-stealing sweep scheduler.
///
/// `fetch_add` is the only operation the shipped protocol needs; it uses
/// relaxed ordering in the `std` backend (the counter conveys no
/// happens-before edges — slot hand-off is through the slot mutexes).
/// The model backend is sequentially consistent: the checker explores
/// thread interleavings, not weak-memory reorderings.
pub trait AtomicUsizeApi: Sync {
    /// Atomically adds `n`, returning the previous value.
    fn fetch_add(&self, n: usize) -> usize;
    /// Reads the current value.
    fn load(&self) -> usize;
    /// Overwrites the current value.
    fn store(&self, value: usize);
}

/// The spawned thread panicked (or, under the model, was torn down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Panicked;

/// Handle to a spawned thread.
pub trait JoinApi {
    /// Blocks until the thread finishes.
    ///
    /// # Errors
    ///
    /// [`Panicked`] when the thread unwound instead of returning; the
    /// panic is contained, never propagated into the joiner.
    fn join(self) -> Result<(), Panicked>;
}

/// A complete sync backend: the associated types protocols are generic
/// over. Implemented by [`crate::sync::StdBackend`] (production) and
/// [`crate::model::ModelBackend`] (schedule-exhaustive verification).
pub trait Backend: Sized + 'static {
    /// Sending half of [`Backend::spsc`].
    type Sender<T: Send + 'static>: SenderApi<T> + 'static;
    /// Receiving half of [`Backend::spsc`].
    type Receiver<T: Send + 'static>: ReceiverApi<T>;
    /// Scoped-access mutex.
    type Mutex<T: Send + 'static>: MutexApi<T>;
    /// Atomic claim counter.
    type AtomicUsize: AtomicUsizeApi;
    /// Thread handle returned by [`Backend::spawn`].
    type JoinHandle: JoinApi;

    /// Creates a bounded SPSC channel holding at most `depth` values.
    fn spsc<T: Send + 'static>(depth: usize) -> (Self::Sender<T>, Self::Receiver<T>);

    /// Creates a mutex.
    fn mutex<T: Send + 'static>(value: T) -> Self::Mutex<T>;

    /// Creates an atomic counter.
    fn atomic_usize(value: usize) -> Self::AtomicUsize;

    /// Spawns a named thread.
    fn spawn<F: FnOnce() + Send + 'static>(name: &str, f: F) -> Self::JoinHandle;
}
