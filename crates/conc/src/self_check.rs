//! Packaged model checks for the shipped protocols, shared by the
//! `pcache conc-check` subcommand, the CI smoke script, and the
//! integration tests.
//!
//! Each check is a closure the [`Checker`] explores exhaustively up to
//! its preemption bound. The `*-bug` checks run deliberately broken
//! variants of the protocols and *expect* a violation — they demonstrate
//! the checker actually catches the bug classes it claims to (lost
//! events, duplicated work), with a replayable schedule seed.

use std::sync::Arc;

use crate::api::{AtomicUsizeApi, Backend, JoinApi, MutexApi, ReceiverApi, SenderApi, TryRecv};
use crate::model::{self, Checker, ModelBackend, Report};
use crate::port::stream::ChunkStream;
use crate::port::sweep::{claim_loop, store_slot};

/// One named model check.
#[derive(Debug, Clone, Copy)]
pub struct ConcCheck {
    /// Stable check name (shown by `pcache conc-check`).
    pub name: &'static str,
    /// One-line description of the property explored.
    pub what: &'static str,
    /// True for the seeded-bug demos: the check passes when the
    /// exploration *finds* a violation.
    pub expect_violation: bool,
    body: fn(),
}

impl ConcCheck {
    /// Explores every schedule of this check under `checker`.
    #[must_use]
    pub fn run(&self, checker: &Checker) -> Report {
        checker.check(self.body)
    }

    /// Replays one exact schedule of this check from a violation seed.
    #[must_use]
    pub fn replay(&self, checker: &Checker, seed: &str) -> Report {
        checker.replay(seed, self.body)
    }

    /// True when `report` matches this check's expectation: clean for
    /// protocol checks, violating for the seeded-bug demos.
    #[must_use]
    pub fn passed(&self, report: &Report) -> bool {
        report.violation.is_some() == self.expect_violation
    }
}

/// The full check suite, protocols first, seeded-bug demos last.
#[must_use]
pub fn checks() -> &'static [ConcCheck] {
    &[
        ConcCheck {
            name: "stream-delivery",
            what: "chunk channel delivers the exact item sequence under every schedule",
            expect_violation: false,
            body: stream_delivery,
        },
        ConcCheck {
            name: "stream-early-drop",
            what: "dropping the stream mid-chunk always unwinds and joins the producer",
            expect_violation: false,
            body: stream_early_drop,
        },
        ConcCheck {
            name: "sweep-exactly-once",
            what: "claim cursor gives every task to exactly one worker, slots filled exactly once",
            expect_violation: false,
            body: sweep_exactly_once,
        },
        ConcCheck {
            name: "stream-lost-tail-bug",
            what:
                "seeded bug: consumer treating an empty channel as end-of-stream drops tail items",
            expect_violation: true,
            body: stream_lost_tail_bug,
        },
        ConcCheck {
            name: "sweep-racy-cursor-bug",
            what: "seeded bug: load-then-store claim cursor lets two workers run the same task",
            expect_violation: true,
            body: sweep_racy_cursor_bug,
        },
    ]
}

/// Looks a check up by name.
#[must_use]
pub fn find(name: &str) -> Option<&'static ConcCheck> {
    checks().iter().find(|c| c.name == name)
}

// ---------------------------------------------------------------------
// Protocol checks (must be clean).
// ---------------------------------------------------------------------

/// The real streaming protocol, scaled down: 5 items in chunks of 2
/// through a depth-1 channel. Every schedule must deliver exactly
/// `0..5` in order, in exactly `ceil(5/2) = 3` chunks.
fn stream_delivery() {
    let mut stream: ChunkStream<ModelBackend, u64> = ChunkStream::spawn("gen", 1, 2, |mut sink| {
        let mut i = 0u64;
        while !sink.is_closed() && i < 5 {
            sink.push(i);
            i += 1;
        }
        sink.finish();
    });
    let mut got = Vec::new();
    while let Some(v) = stream.next_item() {
        got.push(v);
    }
    let (chunks, blocked_waits) = stream.stats();
    assert_eq!(
        got,
        vec![0, 1, 2, 3, 4],
        "delivery must be schedule-invariant"
    );
    assert_eq!(chunks, 3, "chunk count must be exact");
    // How often the consumer outran the producer is schedule-dependent,
    // but each pull blocks at most once.
    assert!(
        blocked_waits <= chunks + 1,
        "blocked {blocked_waits} of {chunks}"
    );
}

/// Early drop: consume one item of an unbounded producer, then drop the
/// stream. The drop must propagate the hangup to the producer (possibly
/// parked on a full channel) and join its thread — the checker flags
/// any schedule that deadlocks or leaks the producer.
fn stream_early_drop() {
    let mut stream: ChunkStream<ModelBackend, u64> = ChunkStream::spawn("gen", 1, 1, |mut sink| {
        let mut i = 0u64;
        while !sink.is_closed() {
            sink.push(i);
            i += 1;
        }
        sink.finish();
    });
    assert_eq!(stream.next_item(), Some(0));
    drop(stream);
}

/// The real sweep claim protocol, scaled down: 2 workers race a shared
/// cursor for 3 tasks. Every schedule must run each task exactly once
/// and land its record in its own slot.
fn sweep_exactly_once() {
    const N_TASKS: usize = 3;
    let cursor = Arc::new(ModelBackend::atomic_usize(0));
    let slots: Arc<Vec<model::Mutex<Option<usize>>>> =
        Arc::new((0..N_TASKS).map(|_| ModelBackend::mutex(None)).collect());
    let handles: Vec<model::JoinHandle> = (0..2)
        .map(|w| {
            let cursor = Arc::clone(&cursor);
            let slots = Arc::clone(&slots);
            model::spawn(&format!("worker{w}"), move || {
                claim_loop(&*cursor, N_TASKS, |i| store_slot(&slots[i], i));
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker");
    }
    for (i, slot) in slots.iter().enumerate() {
        slot.with(|s| assert_eq!(*s, Some(i), "task {i} lost or misplaced"));
    }
}

// ---------------------------------------------------------------------
// Seeded-bug demos (the checker must find the violation).
// ---------------------------------------------------------------------

/// A plausible-looking consumer bug: `try_recv() == Empty` is read as
/// "stream over" instead of "producer is behind". The schedule where
/// the consumer polls before the producer's first send loses every
/// item; the checker finds it and prints its seed.
fn stream_lost_tail_bug() {
    let (tx, rx) = model::spsc::<u64>(1);
    let producer = model::spawn("gen", move || {
        for i in 0..2 {
            if tx.send(i).is_err() {
                break;
            }
        }
    });
    let mut got = Vec::new();
    // BUG: this exits on `Empty`, which only means the producer has not
    // sent *yet* — not that the stream is over.
    while let TryRecv::Item(v) = rx.try_recv() {
        got.push(v);
    }
    drop(rx);
    producer.join().expect("gen");
    assert_eq!(got, vec![0, 1], "tail items lost");
}

/// The claim loop with `fetch_add` replaced by the racy load-then-store
/// it is often "simplified" to. Two workers can read the same cursor
/// value and claim the same task; [`store_slot`]'s exactly-once assert
/// catches the duplicate in the interleaved schedule.
fn sweep_racy_cursor_bug() {
    const N_TASKS: usize = 2;
    let cursor = Arc::new(ModelBackend::atomic_usize(0));
    let slots: Arc<Vec<model::Mutex<Option<usize>>>> =
        Arc::new((0..N_TASKS).map(|_| ModelBackend::mutex(None)).collect());
    let handles: Vec<model::JoinHandle> = (0..2)
        .map(|w| {
            let cursor = Arc::clone(&cursor);
            let slots = Arc::clone(&slots);
            model::spawn(&format!("worker{w}"), move || loop {
                // BUG: claim must be a single atomic fetch_add.
                let i = cursor.load();
                cursor.store(i + 1);
                if i >= N_TASKS {
                    break;
                }
                store_slot(&slots[i], i);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_names_are_unique() {
        let names: Vec<&str> = checks().iter().map(|c| c.name).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(names.len(), deduped.len());
        assert!(find("stream-delivery").is_some());
        assert!(find("no-such-check").is_none());
    }
}
