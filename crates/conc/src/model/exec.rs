//! The cooperative executor: one run of the program under one schedule.
//!
//! Every model thread is a real OS thread, but exactly one runs at a
//! time. A thread announces each sync operation *before* performing it
//! ([`Executor::yield_op`]) and parks until the controller grants it the
//! token. Because the parked threads publish their pending operations,
//! the controller can see which threads are *enabled* (their operation
//! would not block), detect deadlock the moment no thread is enabled,
//! and compute operation (in)dependence for sleep-set pruning.
//!
//! Operation effects are applied under the executor's state lock at the
//! moment of the grant, so enabledness checked by the controller cannot
//! be invalidated before the thread acts on it.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Model-thread id (0 is the root closure).
pub(crate) type Tid = usize;
/// Sync-object id.
pub(crate) type ObjId = usize;

/// Sentinel payload used to unwind parked threads when a run is torn
/// down; the thread wrapper recognizes it and does not report a panic.
struct AbortToken;

/// A sync operation a thread is about to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    /// First schedulable step of a freshly spawned thread.
    Start,
    /// Acquire a mutex.
    MutexLock(ObjId),
    /// Read an atomic.
    AtomicLoad(ObjId),
    /// Overwrite an atomic.
    AtomicStore(ObjId, usize),
    /// Fetch-add on an atomic.
    AtomicAdd(ObjId, usize),
    /// Blocking bounded-channel send.
    ChanSend(ObjId),
    /// Blocking channel receive.
    ChanRecv(ObjId),
    /// Non-blocking channel receive.
    ChanTryRecv(ObjId),
    /// Join a thread.
    Join(Tid),
}

impl Op {
    /// The object this operation touches, if object-scoped.
    fn obj(self) -> Option<(ObjId, bool)> {
        match self {
            Op::Start | Op::Join(_) => None,
            Op::AtomicLoad(o) => Some((o, false)),
            Op::MutexLock(o)
            | Op::AtomicStore(o, _)
            | Op::AtomicAdd(o, _)
            | Op::ChanSend(o)
            | Op::ChanRecv(o)
            | Op::ChanTryRecv(o) => Some((o, true)),
        }
    }
}

/// What a granted operation produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Outcome {
    /// Plain completion (locks, stores, start, join).
    Done,
    /// Value read by a load or returned by fetch-add.
    Value(usize),
    /// Channel op succeeded; the caller completes the typed transfer.
    Transfer,
    /// Channel is empty (try-recv only).
    Empty,
    /// The peer half of the channel is gone.
    Hungup,
}

/// Executor-side state of one sync object (the typed payloads live in
/// the primitives themselves; the executor tracks what it needs for
/// enabledness).
#[derive(Debug)]
enum ObjState {
    Mutex {
        held_by: Option<Tid>,
    },
    Atomic {
        value: usize,
    },
    Channel {
        len: usize,
        cap: usize,
        sender_alive: bool,
        receiver_alive: bool,
    },
}

#[derive(Debug)]
struct ThreadSlot {
    name: String,
    pending: Option<Op>,
    finished: bool,
}

/// One step's footprint: the objects it touched (with a write flag) and
/// whether it had global effects (spawn, thread exit) that can change
/// any thread's enabledness.
#[derive(Debug, Clone, Default)]
pub(crate) struct StepFootprint {
    pub(crate) accesses: Vec<(ObjId, bool)>,
    pub(crate) global: bool,
}

impl StepFootprint {
    /// True when `op`, pending on another thread, commutes with this
    /// executed step — the basis for keeping that thread in a sleep set.
    pub(crate) fn independent_of(&self, op: Op) -> bool {
        if self.global {
            return false;
        }
        let Some((obj, write)) = op.obj() else {
            // Start/Join depend on thread liveness, not objects: never
            // assume independence.
            return false;
        };
        self.accesses
            .iter()
            .all(|&(o, w)| o != obj || (!w && !write))
    }
}

struct ExecState {
    threads: Vec<ThreadSlot>,
    objects: Vec<ObjState>,
    /// Which thread currently holds the run token.
    active: Option<Tid>,
    /// Torn down: parked threads must unwind and exit.
    abort: bool,
    /// First user panic observed, as `(thread name, message)`.
    failure: Option<(String, String)>,
    /// Footprint of the step currently executing (reset at each grant).
    step: StepFootprint,
    /// Granted operations so far (the per-run step budget).
    steps: u64,
    /// Handles of dropped-but-unjoined threads (leak detection).
    leaked: Vec<Tid>,
    /// Human-readable step log for violation reports.
    log: Vec<String>,
}

/// Snapshot the controller takes at each decision point.
#[derive(Debug)]
pub(crate) struct Decision {
    /// Threads whose pending operation would not block, ascending.
    pub(crate) enabled: Vec<Tid>,
    /// Pending operation of every unfinished thread.
    pub(crate) pending: Vec<(Tid, Op)>,
    /// Footprint of the step that led here (empty at the first point).
    pub(crate) last_step: StepFootprint,
    /// All threads have finished.
    pub(crate) all_finished: bool,
    /// The root closure (thread 0) has finished.
    pub(crate) root_finished: bool,
    /// A user panic was recorded: `(thread name, message)`.
    pub(crate) failure: Option<(String, String)>,
    /// Granted steps so far.
    pub(crate) steps: u64,
    /// Threads whose join handles were dropped without being joined.
    pub(crate) leaked: Vec<Tid>,
}

/// The per-run executor. Created fresh for every schedule.
pub(crate) struct Executor {
    state: Mutex<ExecState>,
    cv: Condvar,
    /// OS handles of all model threads, reaped at run teardown.
    os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.lock();
        f.debug_struct("Executor")
            .field("threads", &st.threads.len())
            .field("objects", &st.objects.len())
            .field("active", &st.active)
            .field("steps", &st.steps)
            .finish_non_exhaustive()
    }
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Executor>, Tid)>> =
        const { std::cell::RefCell::new(None) };
}

/// The executor of the model thread this code runs on.
///
/// # Panics
///
/// Panics when called outside `Checker::check` — model primitives only
/// exist inside a checked closure.
pub(crate) fn current() -> (Arc<Executor>, Tid) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("conc::model primitives used outside Checker::check")
    })
}

/// Silences the default panic hook for model threads: a panic there is
/// an expected, *captured* event — it becomes a [`super::Violation`]
/// with the message and schedule attached — so the default
/// hook's stderr backtrace is pure noise. Installed once, process-wide;
/// panics on non-model threads still reach the previous hook.
fn install_quiet_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let on_model_thread = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("conc-model-"));
            if !on_model_thread {
                prev(info);
            }
        }));
    });
}

impl Executor {
    pub(crate) fn new() -> Arc<Self> {
        install_quiet_panic_hook();
        Arc::new(Self {
            state: Mutex::new(ExecState {
                threads: Vec::new(),
                objects: Vec::new(),
                active: None,
                abort: false,
                failure: None,
                step: StepFootprint::default(),
                steps: 0,
                leaked: Vec::new(),
                log: Vec::new(),
            }),
            cv: Condvar::new(),
            os_handles: Mutex::new(Vec::new()),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ExecState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Registers and starts a model thread running `f`. Immediate: the
    /// new thread parks at its `Start` op until the controller grants it.
    pub(crate) fn spawn_thread(
        self: &Arc<Self>,
        name: &str,
        f: Box<dyn FnOnce() + Send + 'static>,
    ) -> Tid {
        let tid = {
            let mut st = self.lock();
            st.threads.push(ThreadSlot {
                name: name.to_owned(),
                pending: None,
                finished: false,
            });
            st.step.global = true;
            st.threads.len() - 1
        };
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("conc-model-{name}"))
            .spawn(move || {
                CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
                let result = catch_unwind(AssertUnwindSafe(|| {
                    exec.yield_op(tid, Op::Start);
                    f();
                }));
                exec.thread_finished(tid, result);
            })
            .expect("spawn model thread");
        self.os_handles
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(handle);
        tid
    }

    fn thread_finished(&self, tid: Tid, result: Result<(), Box<dyn std::any::Any + Send>>) {
        let mut st = self.lock();
        st.threads[tid].finished = true;
        if st.active == Some(tid) {
            st.active = None;
        }
        st.step.global = true;
        if let Err(payload) = result {
            if !payload.is::<AbortToken>() && st.failure.is_none() {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                    .unwrap_or_else(|| "panic with non-string payload".to_owned());
                let name = st.threads[tid].name.clone();
                st.failure = Some((name, msg));
            }
        }
        self.cv.notify_all();
    }

    /// Registers a sync object, returning its id.
    pub(crate) fn register_mutex(&self) -> ObjId {
        self.register(ObjState::Mutex { held_by: None })
    }

    pub(crate) fn register_atomic(&self, value: usize) -> ObjId {
        self.register(ObjState::Atomic { value })
    }

    pub(crate) fn register_channel(&self, cap: usize) -> ObjId {
        self.register(ObjState::Channel {
            len: 0,
            cap,
            sender_alive: true,
            receiver_alive: true,
        })
    }

    fn register(&self, obj: ObjState) -> ObjId {
        let mut st = self.lock();
        st.objects.push(obj);
        st.objects.len() - 1
    }

    /// Announces `op`, parks until granted, applies the effect, and
    /// returns its outcome. The single scheduling point of the model.
    pub(crate) fn yield_op(&self, me: Tid, op: Op) -> Outcome {
        if std::thread::panicking() {
            // This thread is unwinding (user panic or teardown); its
            // destructors still perform facade calls. Degrade them to
            // non-blocking defaults — re-raising inside a destructor
            // during unwind would abort the process.
            return self.unwound_default(op);
        }
        let mut st = self.lock();
        if st.abort {
            drop(st);
            resume_unwind(Box::new(AbortToken));
        }
        st.threads[me].pending = Some(op);
        if st.active == Some(me) {
            st.active = None;
        }
        self.cv.notify_all();
        loop {
            if st.abort {
                drop(st);
                resume_unwind(Box::new(AbortToken));
            }
            if st.active == Some(me) {
                break;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.threads[me].pending = None;
        st.steps += 1;
        st.step = StepFootprint::default();
        if st.log.len() < 4096 {
            let entry = format!("t{me} {}: {op:?}", st.threads[me].name);
            st.log.push(entry);
        }
        Self::apply(&mut st, me, op)
    }

    /// Applies an op's effect under the state lock; the caller has the
    /// token, so no other model thread can observe a half-applied state.
    fn apply(st: &mut ExecState, me: Tid, op: Op) -> Outcome {
        if let Some(access) = op.obj() {
            st.step.accesses.push(access);
        } else {
            st.step.global = true;
        }
        match op {
            Op::Start | Op::Join(_) => Outcome::Done,
            Op::MutexLock(o) => {
                let ObjState::Mutex { held_by } = &mut st.objects[o] else {
                    unreachable!("object {o} is not a mutex");
                };
                debug_assert!(held_by.is_none(), "granted lock on a held mutex");
                *held_by = Some(me);
                Outcome::Done
            }
            Op::AtomicLoad(o) => {
                let ObjState::Atomic { value } = &st.objects[o] else {
                    unreachable!("object {o} is not an atomic");
                };
                Outcome::Value(*value)
            }
            Op::AtomicStore(o, v) => {
                let ObjState::Atomic { value } = &mut st.objects[o] else {
                    unreachable!("object {o} is not an atomic");
                };
                *value = v;
                Outcome::Done
            }
            Op::AtomicAdd(o, n) => {
                let ObjState::Atomic { value } = &mut st.objects[o] else {
                    unreachable!("object {o} is not an atomic");
                };
                let old = *value;
                *value = value.wrapping_add(n);
                Outcome::Value(old)
            }
            Op::ChanSend(o) => {
                let ObjState::Channel {
                    len,
                    cap,
                    receiver_alive,
                    ..
                } = &mut st.objects[o]
                else {
                    unreachable!("object {o} is not a channel");
                };
                if !*receiver_alive {
                    Outcome::Hungup
                } else {
                    debug_assert!(*len < *cap, "granted send on a full channel");
                    *len += 1;
                    Outcome::Transfer
                }
            }
            Op::ChanRecv(o) | Op::ChanTryRecv(o) => {
                let ObjState::Channel {
                    len, sender_alive, ..
                } = &mut st.objects[o]
                else {
                    unreachable!("object {o} is not a channel");
                };
                if *len > 0 {
                    *len -= 1;
                    Outcome::Transfer
                } else if *sender_alive {
                    debug_assert!(
                        matches!(op, Op::ChanTryRecv(_)),
                        "granted blocking recv on an empty live channel"
                    );
                    Outcome::Empty
                } else {
                    Outcome::Hungup
                }
            }
        }
    }

    /// Best-effort outcome for facade calls made while the calling
    /// thread is already unwinding.
    fn unwound_default(&self, op: Op) -> Outcome {
        let mut st = self.lock();
        match op {
            Op::Start | Op::Join(_) | Op::MutexLock(_) => Outcome::Done,
            Op::AtomicLoad(o) | Op::AtomicAdd(o, _) | Op::AtomicStore(o, _) => {
                if let ObjState::Atomic { value } = &mut st.objects[o] {
                    let old = *value;
                    if let Op::AtomicStore(_, v) = op {
                        *value = v;
                    } else if let Op::AtomicAdd(_, n) = op {
                        *value = value.wrapping_add(n);
                    }
                    Outcome::Value(old)
                } else {
                    Outcome::Done
                }
            }
            Op::ChanSend(_) => Outcome::Hungup,
            Op::ChanRecv(_) | Op::ChanTryRecv(_) => Outcome::Hungup,
        }
    }

    /// Immediate (non-scheduling) effect: mutex release. Deliberately
    /// panic-free — it runs from guard destructors, possibly during an
    /// unwind, where a second panic would abort the process.
    pub(crate) fn mutex_unlock(&self, me: Tid, obj: ObjId) {
        let mut st = self.lock();
        if let ObjState::Mutex { held_by } = &mut st.objects[obj] {
            if *held_by == Some(me) {
                *held_by = None;
            }
        }
        st.step.accesses.push((obj, true));
    }

    /// Immediate effect: a channel half was dropped.
    pub(crate) fn channel_closed(&self, obj: ObjId, sender_side: bool) {
        let mut st = self.lock();
        if let ObjState::Channel {
            sender_alive,
            receiver_alive,
            ..
        } = &mut st.objects[obj]
        {
            if sender_side {
                *sender_alive = false;
            } else {
                *receiver_alive = false;
            }
        }
        st.step.accesses.push((obj, true));
    }

    /// Records a join handle dropped without `join` (thread leak).
    pub(crate) fn leak(&self, target: Tid) {
        let mut st = self.lock();
        st.leaked.push(target);
    }

    /// True when `target` has finished (used by join bookkeeping).
    pub(crate) fn is_finished(&self, target: Tid) -> bool {
        self.lock().threads[target].finished
    }

    fn op_enabled(st: &ExecState, op: Op) -> bool {
        match op {
            Op::Start
            | Op::AtomicLoad(_)
            | Op::AtomicStore(..)
            | Op::AtomicAdd(..)
            | Op::ChanTryRecv(_) => true,
            Op::MutexLock(o) => {
                matches!(&st.objects[o], ObjState::Mutex { held_by: None })
            }
            Op::ChanSend(o) => match &st.objects[o] {
                ObjState::Channel {
                    len,
                    cap,
                    receiver_alive,
                    ..
                } => *len < *cap || !*receiver_alive,
                _ => unreachable!("object {o} is not a channel"),
            },
            Op::ChanRecv(o) => match &st.objects[o] {
                ObjState::Channel {
                    len, sender_alive, ..
                } => *len > 0 || !*sender_alive,
                _ => unreachable!("object {o} is not a channel"),
            },
            Op::Join(t) => st.threads[t].finished,
        }
    }

    /// Blocks until every model thread is parked (or finished), then
    /// snapshots the decision the controller must take.
    pub(crate) fn decision(&self) -> Decision {
        // Quiescence: no thread holds the token AND every unfinished
        // thread has announced its next operation. The second clause
        // covers freshly spawned threads racing to their first park.
        let quiescent = |st: &ExecState| {
            st.active.is_none() && st.threads.iter().all(|t| t.finished || t.pending.is_some())
        };
        let mut st = self.lock();
        while !quiescent(&st) && st.failure.is_none() {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        let pending: Vec<(Tid, Op)> = st
            .threads
            .iter()
            .enumerate()
            .filter_map(|(t, slot)| slot.pending.map(|op| (t, op)))
            .collect();
        let enabled: Vec<Tid> = pending
            .iter()
            .filter(|&&(_, op)| Self::op_enabled(&st, op))
            .map(|&(t, _)| t)
            .collect();
        Decision {
            enabled,
            pending,
            last_step: st.step.clone(),
            all_finished: st.threads.iter().all(|t| t.finished),
            root_finished: st.threads.first().is_some_and(|t| t.finished),
            failure: st.failure.clone(),
            steps: st.steps,
            leaked: st.leaked.clone(),
        }
    }

    /// Hands the token to `tid`.
    pub(crate) fn grant(&self, tid: Tid) {
        let mut st = self.lock();
        debug_assert!(st.threads[tid].pending.is_some(), "granting an idle thread");
        st.active = Some(tid);
        self.cv.notify_all();
    }

    /// Human-readable description of `tid`'s pending operation.
    pub(crate) fn describe(&self, tid: Tid) -> String {
        let st = self.lock();
        let slot = &st.threads[tid];
        match slot.pending {
            Some(op) => format!("t{tid} {} blocked at {op:?}", slot.name),
            None if slot.finished => format!("t{tid} {} (finished)", slot.name),
            None => format!("t{tid} {} (running)", slot.name),
        }
    }

    /// The step log collected so far (for violation reports).
    pub(crate) fn log(&self) -> Vec<String> {
        self.lock().log.clone()
    }

    /// Tears the run down: unwinds every parked thread and reaps all OS
    /// threads. Must be called exactly once, after the last decision.
    pub(crate) fn teardown(&self) {
        {
            let mut st = self.lock();
            st.abort = true;
            self.cv.notify_all();
        }
        let handles: Vec<_> = {
            let mut h = self
                .os_handles
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            std::mem::take(&mut *h)
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Typed payload store for a model channel: the executor tracks lengths
/// for enabledness, the queue itself carries the values.
#[derive(Debug)]
pub(crate) struct ChanQueue<T>(Mutex<VecDeque<T>>);

impl<T> ChanQueue<T> {
    pub(crate) fn new() -> Self {
        Self(Mutex::new(VecDeque::new()))
    }

    pub(crate) fn push(&self, value: T) {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push_back(value);
    }

    pub(crate) fn pop(&self) -> Option<T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop_front()
    }
}
