//! The deterministic model checker.
//!
//! [`Checker::check`] runs a closure under a cooperative scheduler that
//! systematically explores thread interleavings: every schedule up to
//! the configured preemption bound, minus interleavings that sleep-set
//! pruning proves equivalent. The closure builds its threads and sync
//! objects from this module's primitives (or, for code written against
//! the facade, from [`ModelBackend`]); plain `assert!`s in the closure
//! become checked properties — a failing schedule is reported with a
//! printable seed that [`Checker::replay`] re-executes exactly.
//!
//! What the checker detects:
//!
//! * **assertion failures / panics** on any model thread,
//! * **deadlock** — no thread can make progress (includes lost-wakeup
//!   bugs, which strand a peer blocked forever),
//! * **thread leaks** — a join handle dropped without `join`, or the
//!   root closure returning while spawned threads are still blocked,
//! * **livelock** — a schedule exceeding the per-run step budget.
//!
//! Modeling limits: interleaving-exhaustive, not weak-memory-exhaustive
//! (atomics are sequentially consistent — the shipped protocols only
//! rely on atomicity, not ordering), and `std` primitives used inside a
//! checked closure are invisible to the scheduler.

mod exec;
mod explore;

use std::sync::Arc;

use crate::api::{self, Backend, JoinApi, MutexApi, Panicked, ReceiverApi, SenderApi, TryRecv};
use exec::{current, ChanQueue, Executor, ObjId, Op, Outcome, Tid};

/// Bounded exhaustive schedule exploration.
#[derive(Debug, Clone)]
pub struct Checker {
    /// Maximum context switches away from a still-runnable thread per
    /// schedule. Bound 2 is the shipping default: per the CHESS line of
    /// work, nearly all real concurrency bugs manifest within two.
    pub preemption_bound: usize,
    /// Safety valve on the number of schedules; exceeding it sets
    /// [`Report::truncated`] instead of looping forever.
    pub max_schedules: u64,
    /// Per-schedule step budget; exceeding it is reported as a livelock.
    pub max_steps: u64,
}

impl Default for Checker {
    fn default() -> Self {
        Self {
            preemption_bound: 2,
            max_schedules: 500_000,
            max_steps: 50_000,
        }
    }
}

/// Why a schedule violated the checked properties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// No thread can make progress.
    Deadlock {
        /// Each blocked thread and the operation it is stuck at.
        blocked: Vec<String>,
    },
    /// A thread was never joined (dropped handle or blocked forever
    /// after the root returned).
    ThreadLeak {
        /// The leaked threads.
        threads: Vec<String>,
    },
    /// A model thread panicked (assertion failure).
    Panic {
        /// Name of the panicking thread.
        thread: String,
        /// The panic message.
        message: String,
    },
    /// The schedule exceeded [`Checker::max_steps`] (livelock).
    StepBudget {
        /// Steps executed when the budget tripped.
        steps: u64,
    },
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Deadlock { blocked } => {
                write!(f, "deadlock: {}", blocked.join("; "))
            }
            Self::ThreadLeak { threads } => {
                write!(f, "thread leak (never joined): {}", threads.join("; "))
            }
            Self::Panic { thread, message } => {
                write!(f, "panic on {thread}: {message}")
            }
            Self::StepBudget { steps } => {
                write!(f, "livelock: no fixpoint after {steps} steps")
            }
        }
    }
}

/// A failing schedule.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What failed.
    pub kind: ViolationKind,
    /// Replayable schedule seed (`pb<bound>;t0,t1,...`); feed it to
    /// [`Checker::replay`] to re-execute exactly this interleaving.
    pub seed: String,
    /// Human-readable step log of the failing schedule.
    pub trace: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.kind)?;
        writeln!(f, "replay seed: {}", self.seed)?;
        writeln!(f, "schedule:")?;
        for line in &self.trace {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// Result of a [`Checker::check`] exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Schedules executed.
    pub schedules: u64,
    /// Schedules abandoned by sleep-set pruning (counted in
    /// [`Report::schedules`]).
    pub pruned: u64,
    /// Deepest schedule, in scheduling decisions.
    pub max_depth: usize,
    /// Exploration hit [`Checker::max_schedules`] before exhausting the
    /// bounded schedule space.
    pub truncated: bool,
    /// The first failing schedule, if any.
    pub violation: Option<Violation>,
}

impl Report {
    /// Panics with the full violation report (kind, seed, schedule) if
    /// any schedule failed — the assertion to end model tests with.
    ///
    /// # Panics
    ///
    /// Panics when the exploration found a violation.
    pub fn assert_clean(&self) {
        if let Some(v) = &self.violation {
            panic!(
                "model check failed after {} schedules:\n{v}",
                self.schedules
            );
        }
    }
}

impl Checker {
    /// A checker with the given preemption bound and default budgets.
    #[must_use]
    pub fn with_bound(preemption_bound: usize) -> Self {
        Self {
            preemption_bound,
            ..Self::default()
        }
    }

    /// Explores every schedule of `f` within the preemption bound,
    /// stopping at the first violation.
    ///
    /// `f` runs once per schedule and must be deterministic apart from
    /// scheduling: build all threads and sync objects inside it.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        explore::Search::new(self, Arc::new(f)).run()
    }

    /// Re-executes exactly the schedule a violation's seed encodes.
    ///
    /// # Panics
    ///
    /// Panics when `seed` does not parse or names a thread that is not
    /// schedulable at the recorded point (i.e. the seed does not belong
    /// to this program).
    pub fn replay<F>(&self, seed: &str, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let (bound, schedule) = explore::parse_seed(seed).expect("malformed schedule seed");
        let checker = Self {
            preemption_bound: bound,
            ..self.clone()
        };
        explore::Search::new(&checker, Arc::new(f)).replay(&schedule)
    }
}

// ---------------------------------------------------------------------
// Model primitives (the ModelBackend implementation).
// ---------------------------------------------------------------------

/// Handle to a model thread; dropping it without joining is reported as
/// a thread leak.
#[derive(Debug)]
pub struct JoinHandle {
    exec: Arc<Executor>,
    target: Tid,
    me: Tid,
    joined: bool,
}

/// Spawns a named model thread.
///
/// # Panics
///
/// Panics when called outside [`Checker::check`].
pub fn spawn<F: FnOnce() + Send + 'static>(name: &str, f: F) -> JoinHandle {
    let (exec, me) = current();
    let target = exec.spawn_thread(name, Box::new(f));
    JoinHandle {
        exec,
        target,
        me,
        joined: false,
    }
}

impl JoinApi for JoinHandle {
    fn join(mut self) -> Result<(), Panicked> {
        self.joined = true;
        self.exec.yield_op(self.me, Op::Join(self.target));
        Ok(())
    }
}

impl Drop for JoinHandle {
    fn drop(&mut self) {
        // A handle dropped before the thread finished detaches it —
        // exactly the bug class the checker reports as a leak. Drops
        // that happen while tearing down an already-failed schedule are
        // not the protocol's fault and stay unrecorded.
        if !self.joined && !std::thread::panicking() && !self.exec.is_finished(self.target) {
            self.exec.leak(self.target);
        }
    }
}

/// Model mutex with scoped access.
#[derive(Debug)]
pub struct Mutex<T> {
    data: std::sync::Mutex<T>,
    obj: ObjId,
    exec: Arc<Executor>,
}

impl<T> Mutex<T> {
    /// Creates a model mutex.
    ///
    /// # Panics
    ///
    /// Panics when called outside [`Checker::check`].
    #[must_use]
    pub fn new(value: T) -> Self {
        let (exec, _) = current();
        let obj = exec.register_mutex();
        Self {
            data: std::sync::Mutex::new(value),
            obj,
            exec,
        }
    }
}

impl<T: Send> MutexApi<T> for Mutex<T> {
    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let (_, me) = current();
        self.exec.yield_op(me, Op::MutexLock(self.obj));
        // Release the model-level lock even if `f` panics, so the
        // failing schedule tears down instead of wedging.
        struct Unlock<'e>(&'e Executor, Tid, ObjId);
        impl Drop for Unlock<'_> {
            fn drop(&mut self) {
                self.0.mutex_unlock(self.1, self.2);
            }
        }
        let _unlock = Unlock(&self.exec, me, self.obj);
        // Uncontended by construction: the scheduler only grants the
        // lock when no other model thread holds it.
        let mut guard = self
            .data
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut guard)
    }
}

/// Model atomic counter (sequentially consistent).
#[derive(Debug)]
pub struct AtomicUsize {
    obj: ObjId,
    exec: Arc<Executor>,
}

impl AtomicUsize {
    /// Creates a model atomic.
    ///
    /// # Panics
    ///
    /// Panics when called outside [`Checker::check`].
    #[must_use]
    pub fn new(value: usize) -> Self {
        let (exec, _) = current();
        let obj = exec.register_atomic(value);
        Self { obj, exec }
    }
}

impl api::AtomicUsizeApi for AtomicUsize {
    fn fetch_add(&self, n: usize) -> usize {
        let (_, me) = current();
        match self.exec.yield_op(me, Op::AtomicAdd(self.obj, n)) {
            Outcome::Value(v) => v,
            _ => 0,
        }
    }

    fn load(&self) -> usize {
        let (_, me) = current();
        match self.exec.yield_op(me, Op::AtomicLoad(self.obj)) {
            Outcome::Value(v) => v,
            _ => 0,
        }
    }

    fn store(&self, value: usize) {
        let (_, me) = current();
        self.exec.yield_op(me, Op::AtomicStore(self.obj, value));
    }
}

/// Sending half of a model SPSC channel.
#[derive(Debug)]
pub struct Sender<T> {
    queue: Arc<ChanQueue<T>>,
    obj: ObjId,
    exec: Arc<Executor>,
}

/// Receiving half of a model SPSC channel.
#[derive(Debug)]
pub struct Receiver<T> {
    queue: Arc<ChanQueue<T>>,
    obj: ObjId,
    exec: Arc<Executor>,
}

/// Creates a bounded model SPSC channel of `depth` slots.
///
/// # Panics
///
/// Panics when called outside [`Checker::check`] or when `depth` is 0.
#[must_use]
pub fn spsc<T: Send>(depth: usize) -> (Sender<T>, Receiver<T>) {
    assert!(depth > 0, "channel depth must be at least 1");
    let (exec, _) = current();
    let obj = exec.register_channel(depth);
    let queue = Arc::new(ChanQueue::new());
    (
        Sender {
            queue: Arc::clone(&queue),
            obj,
            exec: Arc::clone(&exec),
        },
        Receiver { queue, obj, exec },
    )
}

impl<T: Send> SenderApi<T> for Sender<T> {
    fn send(&self, value: T) -> Result<(), T> {
        let (_, me) = current();
        match self.exec.yield_op(me, Op::ChanSend(self.obj)) {
            Outcome::Transfer => {
                self.queue.push(value);
                Ok(())
            }
            _ => Err(value),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        self.exec.channel_closed(self.obj, true);
    }
}

impl<T: Send> ReceiverApi<T> for Receiver<T> {
    fn try_recv(&self) -> TryRecv<T> {
        let (_, me) = current();
        match self.exec.yield_op(me, Op::ChanTryRecv(self.obj)) {
            Outcome::Transfer => TryRecv::Item(
                self.queue
                    .pop()
                    .expect("granted recv on tracked-empty queue"),
            ),
            Outcome::Empty => TryRecv::Empty,
            _ => TryRecv::Disconnected,
        }
    }

    fn recv(&self) -> Option<T> {
        let (_, me) = current();
        match self.exec.yield_op(me, Op::ChanRecv(self.obj)) {
            Outcome::Transfer => Some(
                self.queue
                    .pop()
                    .expect("granted recv on tracked-empty queue"),
            ),
            _ => None,
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.exec.channel_closed(self.obj, false);
    }
}

/// The model-checking sync backend: same facade as
/// [`crate::sync::StdBackend`], every operation a scheduling point.
#[derive(Debug, Clone, Copy)]
pub enum ModelBackend {}

impl Backend for ModelBackend {
    type Sender<T: Send + 'static> = Sender<T>;
    type Receiver<T: Send + 'static> = Receiver<T>;
    type Mutex<T: Send + 'static> = Mutex<T>;
    type AtomicUsize = AtomicUsize;
    type JoinHandle = JoinHandle;

    fn spsc<T: Send + 'static>(depth: usize) -> (Sender<T>, Receiver<T>) {
        spsc(depth)
    }

    fn mutex<T: Send + 'static>(value: T) -> Mutex<T> {
        Mutex::new(value)
    }

    fn atomic_usize(value: usize) -> AtomicUsize {
        AtomicUsize::new(value)
    }

    fn spawn<F: FnOnce() + Send + 'static>(name: &str, f: F) -> JoinHandle {
        spawn(name, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::AtomicUsizeApi;

    #[test]
    fn single_thread_trivially_clean() {
        let report = Checker::default().check(|| {
            let a = AtomicUsize::new(0);
            a.store(3);
            assert_eq!(a.load(), 3);
        });
        report.assert_clean();
        assert_eq!(report.schedules, 1);
    }

    #[test]
    fn explores_multiple_interleavings_of_two_writers() {
        let report = Checker::default().check(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let b = Arc::clone(&a);
            let t = spawn("w", move || {
                b.fetch_add(1);
            });
            a.fetch_add(1);
            t.join().expect("worker");
            assert_eq!(a.load(), 2);
        });
        report.assert_clean();
        assert!(
            report.schedules > 1,
            "two racing increments admit >1 schedule, got {}",
            report.schedules
        );
    }

    #[test]
    fn fetch_add_races_are_atomic_but_load_store_races_are_caught() {
        // fetch_add: atomic, always sums to 2.
        Checker::default()
            .check(|| {
                let a = Arc::new(AtomicUsize::new(0));
                let b = Arc::clone(&a);
                let t = spawn("w", move || {
                    b.fetch_add(1);
                });
                a.fetch_add(1);
                t.join().expect("worker");
                assert_eq!(a.load(), 2);
            })
            .assert_clean();
        // load-then-store: the checker must find the lost update.
        let report = Checker::default().check(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let b = Arc::clone(&a);
            let t = spawn("w", move || {
                let v = b.load();
                b.store(v + 1);
            });
            let v = a.load();
            a.store(v + 1);
            t.join().expect("worker");
            assert_eq!(a.load(), 2, "lost update");
        });
        let v = report.violation.expect("load/store race must be caught");
        assert!(matches!(v.kind, ViolationKind::Panic { .. }), "{}", v.kind);
    }

    #[test]
    fn deadlock_is_detected() {
        // Receiver waits on a channel nobody ever sends on.
        let report = Checker::default().check(|| {
            let (tx, rx) = spsc::<u8>(1);
            let t = spawn("rx", move || {
                let _ = rx.recv();
            });
            // Keep tx alive so recv cannot observe a hangup, then wait
            // for a thread that can never finish.
            t.join().expect("worker");
            drop(tx);
        });
        let v = report.violation.expect("deadlock must be caught");
        assert!(
            matches!(v.kind, ViolationKind::Deadlock { .. }),
            "{}",
            v.kind
        );
        assert!(v.seed.starts_with("pb2;"), "seed: {}", v.seed);
    }

    #[test]
    fn unjoined_thread_is_a_leak() {
        let report = Checker::default().check(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let b = Arc::clone(&a);
            let handle = spawn("orphan", move || {
                b.fetch_add(1);
            });
            drop(handle); // detached — never joined
        });
        let v = report.violation.expect("leak must be caught");
        assert!(
            matches!(v.kind, ViolationKind::ThreadLeak { .. }),
            "{}",
            v.kind
        );
    }

    #[test]
    fn violation_seed_replays_to_the_same_violation() {
        let body = || {
            let a = Arc::new(AtomicUsize::new(0));
            let b = Arc::clone(&a);
            let t = spawn("w", move || {
                let v = b.load();
                b.store(v + 1);
            });
            let v = a.load();
            a.store(v + 1);
            t.join().expect("worker");
            assert_eq!(a.load(), 2, "lost update");
        };
        let checker = Checker::default();
        let report = checker.check(body);
        let violation = report.violation.expect("race caught");
        let replay = checker.replay(&violation.seed, body);
        assert_eq!(replay.schedules, 1);
        let replayed = replay.violation.expect("replay reproduces the violation");
        assert_eq!(replayed.kind, violation.kind);
    }

    #[test]
    fn sleep_sets_prune_independent_interleavings() {
        // Two threads on two unrelated atomics: every interleaving is
        // equivalent, so pruning should cut the schedule count well
        // below the unpruned bound-2 count.
        let report = Checker::default().check(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let b = Arc::new(AtomicUsize::new(0));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = spawn("w", move || {
                a2.fetch_add(1);
                a2.fetch_add(1);
            });
            b.fetch_add(1);
            b.fetch_add(1);
            t.join().expect("worker");
            assert_eq!(a.load(), 2);
            assert_eq!(b2.load(), 2);
        });
        report.assert_clean();
        assert!(
            report.schedules < 40,
            "independent ops should prune hard, ran {}",
            report.schedules
        );
    }

    #[test]
    fn mutex_provides_mutual_exclusion_under_all_schedules() {
        Checker::default()
            .check(|| {
                let m = Arc::new(Mutex::new((0u64, false)));
                let m2 = Arc::clone(&m);
                let t = spawn("w", move || {
                    m2.with(|(count, in_cs)| {
                        assert!(!*in_cs, "two threads inside the critical section");
                        *in_cs = true;
                        *count += 1;
                        *in_cs = false;
                    });
                });
                m.with(|(count, in_cs)| {
                    assert!(!*in_cs, "two threads inside the critical section");
                    *in_cs = true;
                    *count += 1;
                    *in_cs = false;
                });
                t.join().expect("worker");
                m.with(|(count, _)| assert_eq!(*count, 2));
            })
            .assert_clean();
    }
}
