//! Schedule exploration: depth-first search over thread interleavings.
//!
//! Each *decision point* is a state where every model thread is parked
//! at an announced operation; the explorer chooses which enabled thread
//! steps next. Exhaustiveness is bounded two ways:
//!
//! * **Preemption bound** — switching away from a thread that could
//!   still run counts as a preemption; schedules using more than
//!   `preemption_bound` of them are not explored. Forced switches (the
//!   running thread blocked or finished) are always free, so every
//!   execution remains schedulable and bound *b* covers all bugs
//!   triggerable by ≤ *b* preemptions (the CHESS result: almost all
//!   real concurrency bugs need very few).
//! * **Sleep sets** — after fully exploring thread `t` from a state,
//!   `t` is put to sleep there; sibling branches skip `t` until an
//!   executed step is *dependent* on `t`'s pending operation (touches
//!   the same object with a write, or has global effects). This prunes
//!   interleavings that only reorder independent steps, which by
//!   construction cannot change any observable outcome.
//!
//! A schedule is the sequence of thread ids granted at each decision
//! point. Violations carry the schedule as a printable seed; `replay`
//! re-executes exactly that schedule for debugging.

use std::collections::BTreeSet;
use std::sync::Arc;

use super::exec::{Decision, Executor, StepFootprint, Tid};
use super::{Checker, Report, Violation, ViolationKind};

/// One decision point on the current DFS path.
struct Frame {
    /// Enabled threads, ascending (the choice menu).
    enabled: Vec<Tid>,
    /// Pending op of every parked thread at this point.
    pending: Vec<(Tid, super::exec::Op)>,
    /// The thread that executed the step leading here.
    running_before: Option<Tid>,
    /// Preemptions consumed on the path up to (not including) this choice.
    preemptions: usize,
    /// Threads asleep here: their next step is covered by a sibling branch.
    sleep: BTreeSet<Tid>,
    /// Choices fully explored from this point.
    done: BTreeSet<Tid>,
    /// The choice currently being explored.
    chosen: Tid,
    /// Footprint of `chosen`'s executed step (filled at the next point).
    step: StepFootprint,
}

impl Frame {
    fn pending_of(&self, tid: Tid) -> Option<super::exec::Op> {
        self.pending
            .iter()
            .find(|&&(t, _)| t == tid)
            .map(|&(_, op)| op)
    }

    /// Preemption cost of choosing `tid` here: 1 when the previously
    /// running thread is still enabled but passed over.
    fn preemption_cost(&self, tid: Tid) -> usize {
        match self.running_before {
            Some(r) if r != tid && self.enabled.contains(&r) => 1,
            _ => 0,
        }
    }

    /// Next unexplored, non-sleeping, within-bound choice (ascending).
    fn next_candidate(&self, bound: usize) -> Option<Tid> {
        self.enabled.iter().copied().find(|&t| {
            !self.done.contains(&t)
                && !self.sleep.contains(&t)
                && self.preemptions + self.preemption_cost(t) <= bound
        })
    }

    /// Default choice for fresh frames: keep the running thread when
    /// possible (zero preemptions), else the lowest eligible id.
    fn default_choice(&self, bound: usize) -> Option<Tid> {
        if let Some(r) = self.running_before {
            if self.enabled.contains(&r) && !self.sleep.contains(&r) && !self.done.contains(&r) {
                return Some(r);
            }
        }
        self.next_candidate(bound)
    }
}

/// How one schedule execution ended.
enum RunEnd {
    /// All threads finished; no violation.
    Complete,
    /// Sleep sets proved the continuation redundant; abandoned.
    Pruned,
    /// A property failed; search stops.
    Violation(ViolationKind),
}

pub(super) struct Search<'c> {
    checker: &'c Checker,
    root: Arc<dyn Fn() + Send + Sync>,
    path: Vec<Frame>,
    schedules: u64,
    pruned: u64,
    max_depth: usize,
}

impl<'c> Search<'c> {
    pub(super) fn new(checker: &'c Checker, root: Arc<dyn Fn() + Send + Sync>) -> Self {
        Self {
            checker,
            root,
            path: Vec::new(),
            schedules: 0,
            pruned: 0,
            max_depth: 0,
        }
    }

    /// Exhaustive bounded search; stops at the first violation.
    pub(super) fn run(mut self) -> Report {
        let mut truncated = false;
        loop {
            if self.schedules >= self.checker.max_schedules {
                truncated = true;
                break;
            }
            let (end, log) = self.execute(None);
            self.schedules += 1;
            self.max_depth = self.max_depth.max(self.path.len());
            match end {
                RunEnd::Complete => {}
                RunEnd::Pruned => self.pruned += 1,
                RunEnd::Violation(kind) => {
                    let seed = self.seed();
                    return self.report(
                        truncated,
                        Some(Violation {
                            kind,
                            seed,
                            trace: log,
                        }),
                    );
                }
            }
            if !self.backtrack() {
                break;
            }
        }
        self.report(truncated, None)
    }

    /// Replays an explicit schedule once.
    pub(super) fn replay(mut self, schedule: &[Tid]) -> Report {
        let (end, log) = self.execute(Some(schedule));
        self.schedules = 1;
        let violation = match end {
            RunEnd::Violation(kind) => Some(Violation {
                kind,
                seed: self.seed(),
                trace: log,
            }),
            _ => None,
        };
        self.report(false, violation)
    }

    fn report(&self, truncated: bool, violation: Option<Violation>) -> Report {
        Report {
            schedules: self.schedules,
            pruned: self.pruned,
            max_depth: self.max_depth,
            truncated,
            violation,
        }
    }

    /// The current path rendered as a replayable seed.
    fn seed(&self) -> String {
        let ids: Vec<String> = self.path.iter().map(|f| f.chosen.to_string()).collect();
        format!("pb{};{}", self.checker.preemption_bound, ids.join(","))
    }

    /// Runs one schedule. Frames already on `self.path` force the
    /// choices of the prefix; past the prefix (or with `forced`, past
    /// the given list), fresh frames extend the path.
    ///
    /// Returns the run's end plus the executor's step log.
    fn execute(&mut self, forced: Option<&[Tid]>) -> (RunEnd, Vec<String>) {
        let exec = Executor::new();
        let root = Arc::clone(&self.root);
        exec.spawn_thread("main", Box::new(move || root()));
        let mut depth = 0usize;
        let end = loop {
            let decision = exec.decision();
            if let Some(kind) = self.terminal(&exec, &decision, depth) {
                break kind;
            }
            // Attach the executed step's footprint to the frame whose
            // choice produced it (for sleep-set derivation below).
            if depth > 0 {
                self.path[depth - 1].step = decision.last_step.clone();
            }
            let chosen = if depth < self.path.len() {
                // Prefix: verify determinism, then follow the recorded choice.
                let frame = &self.path[depth];
                assert_eq!(
                    frame.enabled, decision.enabled,
                    "non-deterministic replay: enabled sets diverged at step {depth} \
                     (model code must be deterministic apart from scheduling)"
                );
                frame.chosen
            } else {
                let frame = self.fresh_frame(&decision, depth, forced);
                let choice = match forced {
                    Some(schedule) => {
                        let Some(&tid) = schedule.get(depth) else {
                            // Forced schedule exhausted prematurely.
                            break RunEnd::Pruned;
                        };
                        assert!(
                            decision.enabled.contains(&tid),
                            "seed replays a disabled thread t{tid} at step {depth}"
                        );
                        Some(tid)
                    }
                    None => frame.default_choice(self.checker.preemption_bound),
                };
                let Some(tid) = choice else {
                    // Every enabled thread is asleep: this continuation
                    // only reorders already-covered independent steps.
                    break RunEnd::Pruned;
                };
                let mut frame = frame;
                frame.chosen = tid;
                self.path.push(frame);
                tid
            };
            exec.grant(chosen);
            depth += 1;
        };
        // Discard frames beyond the executed depth (a pruned/violating
        // run may end mid-prefix on replays).
        self.path.truncate(depth);
        let log = exec.log();
        exec.teardown();
        (end, log)
    }

    /// Checks run-terminating conditions at a decision point.
    fn terminal(&self, exec: &Executor, d: &Decision, depth: usize) -> Option<RunEnd> {
        if let Some((thread, message)) = &d.failure {
            return Some(RunEnd::Violation(ViolationKind::Panic {
                thread: thread.clone(),
                message: message.clone(),
            }));
        }
        if d.steps > self.checker.max_steps {
            return Some(RunEnd::Violation(ViolationKind::StepBudget {
                steps: d.steps,
            }));
        }
        if d.all_finished {
            if d.leaked.is_empty() {
                return Some(RunEnd::Complete);
            }
            let threads = d.leaked.iter().map(|&t| exec.describe(t)).collect();
            return Some(RunEnd::Violation(ViolationKind::ThreadLeak { threads }));
        }
        if d.enabled.is_empty() {
            let blocked: Vec<String> = d.pending.iter().map(|&(t, _)| exec.describe(t)).collect();
            if d.root_finished {
                // The root returned while spawned threads are still
                // blocked — they can never be scheduled again.
                return Some(RunEnd::Violation(ViolationKind::ThreadLeak {
                    threads: blocked,
                }));
            }
            return Some(RunEnd::Violation(ViolationKind::Deadlock { blocked }));
        }
        let _ = depth;
        None
    }

    /// Builds a fresh frame at `depth`, deriving its sleep set from the
    /// parent: threads stay asleep only while the steps executed since
    /// they were put to sleep are independent of their pending op.
    fn fresh_frame(&self, d: &Decision, depth: usize, forced: Option<&[Tid]>) -> Frame {
        let mut sleep = BTreeSet::new();
        if forced.is_none() {
            if let Some(parent) = depth.checked_sub(1).and_then(|i| self.path.get(i)) {
                for &t in parent.sleep.iter().chain(parent.done.iter()) {
                    if t == parent.chosen {
                        continue;
                    }
                    let Some(op) = parent.pending_of(t) else {
                        continue;
                    };
                    if d.last_step.independent_of(op) {
                        sleep.insert(t);
                    }
                }
            }
        }
        let running_before = depth
            .checked_sub(1)
            .and_then(|i| self.path.get(i))
            .map(|f| f.chosen);
        let preemptions = depth
            .checked_sub(1)
            .and_then(|i| self.path.get(i))
            .map_or(0, |f| f.preemptions + f.preemption_cost(f.chosen));
        Frame {
            enabled: d.enabled.clone(),
            pending: d.pending.clone(),
            running_before,
            preemptions,
            sleep,
            done: BTreeSet::new(),
            chosen: usize::MAX, // set by the caller
            step: StepFootprint::default(),
        }
    }

    /// Standard DFS backtrack: mark the deepest choice explored, switch
    /// to its next sibling, or pop. Returns false when fully explored.
    fn backtrack(&mut self) -> bool {
        while let Some(last) = self.path.last_mut() {
            let finished = last.chosen;
            last.done.insert(finished);
            if let Some(next) = last.next_candidate(self.checker.preemption_bound) {
                last.chosen = next;
                return true;
            }
            self.path.pop();
        }
        false
    }
}

/// Parses a seed produced by [`Violation::seed`]: `pb<bound>;0,1,2,...`.
pub(super) fn parse_seed(seed: &str) -> Result<(usize, Vec<Tid>), String> {
    let rest = seed
        .strip_prefix("pb")
        .ok_or_else(|| format!("seed {seed:?} does not start with 'pb'"))?;
    let (bound, ids) = rest
        .split_once(';')
        .ok_or_else(|| format!("seed {seed:?} has no ';' separator"))?;
    let bound: usize = bound
        .parse()
        .map_err(|_| format!("seed bound {bound:?} is not a number"))?;
    if ids.is_empty() {
        return Ok((bound, Vec::new()));
    }
    let ids = ids
        .split(',')
        .map(|s| {
            s.parse::<Tid>()
                .map_err(|_| format!("seed step {s:?} is not a thread id"))
        })
        .collect::<Result<Vec<Tid>, String>>()?;
    Ok((bound, ids))
}
