//! Deterministic concurrency verification for primecache's threaded
//! engines.
//!
//! Two real concurrent protocols live in this workspace: the streaming
//! trace engine's bounded chunk channel
//! (`primecache-workloads::stream`) and the sweep scheduler's atomic
//! claim-cursor/slot hand-off (`primecache-sim::suite`). Testing them
//! with ordinary unit tests only samples whatever interleavings the OS
//! happens to produce; this crate makes the interleavings themselves
//! the test input.
//!
//! The crate has three layers:
//!
//! * [`api`] — a minimal sync facade (bounded SPSC channel, scoped
//!   mutex, atomic counter, named threads) expressed as traits with a
//!   pluggable [`api::Backend`].
//! * [`sync`] — the production backend: `#[inline]` wrappers over
//!   `std::sync`, compiling to exactly the primitives the engines used
//!   before the facade existed.
//! * [`model`] — the verification backend: a cooperative scheduler that
//!   runs the *same protocol source* and exhaustively explores thread
//!   interleavings up to a preemption bound, with sleep-set pruning,
//!   detecting deadlocks, lost wakeups, panics/assertion failures and
//!   leaked threads, and printing a seed that replays any failing
//!   schedule deterministically.
//!
//! The protocols themselves, written once against the facade and
//! instantiated with both backends, live in [`port`]. [`self_check`]
//! packages the bounded explorations behind `pcache conc-check`.
//!
//! Zero dependencies, no `unsafe`: the model checker schedules real OS
//! threads one-at-a-time with a condvar token rather than fibers.

pub mod api;
pub mod model;
pub mod port;
pub mod self_check;
pub mod sync;

pub use api::{Backend, JoinApi, MutexApi, Panicked, ReceiverApi, SenderApi, TryRecv};
pub use model::{Checker, ModelBackend, Report, Violation, ViolationKind};
pub use sync::StdBackend;
