//! The verified concurrent protocols, written once against the
//! [`crate::api`] facade.
//!
//! Production instantiates these with [`crate::sync::StdBackend`]
//! (the streaming trace engine wraps [`stream::ChunkStream`], the sweep
//! scheduler's workers run [`sweep::claim_loop`]); the model tests
//! instantiate the *same functions* with [`crate::model::ModelBackend`]
//! and explore every interleaving. A bug fixed here is fixed in both
//! worlds, and a property verified here is verified for the code that
//! actually ships.

pub mod stream;
pub mod sweep;
