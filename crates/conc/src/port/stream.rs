//! The chunked streaming protocol: a producer thread pushes items
//! through a bounded channel of fixed-size chunks; the consumer pulls
//! items one at a time.
//!
//! This is the protocol behind `primecache-workloads::EventStream`.
//! Verified properties (see `crates/conc/tests/model_protocols.rs`):
//!
//! * the delivered item sequence is identical under every schedule,
//! * the `chunks` counter is exactly `ceil(items / chunk_cap)`,
//! * dropping the stream early always unwinds the producer and joins
//!   its thread — no deadlock, no leak, under any interleaving.

use crate::api::{Backend, JoinApi, ReceiverApi, SenderApi, TryRecv};

/// Producer side: accumulates items into fixed-size chunks and sends
/// each full chunk over the bounded channel.
///
/// A failed send (the consumer hung up) flips [`ChunkSink::is_closed`];
/// producers poll it to stop generating into the void.
#[derive(Debug)]
pub struct ChunkSink<B: Backend, T: Send + 'static> {
    chunk: Vec<T>,
    chunk_cap: usize,
    tx: B::Sender<Vec<T>>,
    closed: bool,
}

impl<B: Backend, T: Send + 'static> ChunkSink<B, T> {
    /// Wraps the sending half of a chunk channel.
    ///
    /// # Panics
    ///
    /// Panics when `chunk_cap` is zero.
    #[must_use]
    pub fn new(tx: B::Sender<Vec<T>>, chunk_cap: usize) -> Self {
        assert!(chunk_cap > 0, "chunk capacity must be at least 1");
        Self {
            chunk: Vec::with_capacity(chunk_cap),
            chunk_cap,
            tx,
            closed: false,
        }
    }

    /// True once the consumer has hung up; the producer should stop.
    ///
    /// Note the hangup is only *observed* at a chunk flush — a producer
    /// mid-chunk keeps accumulating until the chunk fills.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Appends one item, flushing the chunk to the consumer when full.
    pub fn push(&mut self, item: T) {
        if self.closed {
            return;
        }
        self.chunk.push(item);
        if self.chunk.len() >= self.chunk_cap {
            let full = std::mem::replace(&mut self.chunk, Vec::with_capacity(self.chunk_cap));
            if self.tx.send(full).is_err() {
                self.closed = true;
            }
        }
    }

    /// Flushes a partially filled final chunk. Call once, when the
    /// producer is done generating.
    pub fn finish(&mut self) {
        if !self.closed && !self.chunk.is_empty() {
            let rest = std::mem::take(&mut self.chunk);
            self.closed = self.tx.send(rest).is_err();
        }
    }
}

/// Consumer side: pulls items one at a time, refilling from the chunk
/// channel, and tracks back-pressure.
///
/// Dropping the stream early drops the receiver *first* (so a blocked
/// producer send fails immediately) and then joins the producer thread.
#[derive(Debug)]
pub struct ChunkStream<B: Backend, T: Send + 'static> {
    rx: Option<B::Receiver<Vec<T>>>,
    chunk: std::vec::IntoIter<T>,
    handle: Option<B::JoinHandle>,
    chunks: u64,
    blocked_waits: u64,
    depth: usize,
    chunk_cap: usize,
}

impl<B: Backend, T: Send + 'static> ChunkStream<B, T> {
    /// Spawns `producer` on its own thread with a [`ChunkSink`] feeding
    /// a bounded channel of `depth` chunk slots, `chunk_cap` items each.
    ///
    /// # Panics
    ///
    /// Panics when `depth` or `chunk_cap` is zero.
    pub fn spawn<F>(name: &str, depth: usize, chunk_cap: usize, producer: F) -> Self
    where
        F: FnOnce(ChunkSink<B, T>) + Send + 'static,
    {
        assert!(depth > 0, "channel depth must be at least 1");
        let (tx, rx) = B::spsc::<Vec<T>>(depth);
        let handle = B::spawn(name, move || producer(ChunkSink::new(tx, chunk_cap)));
        Self {
            rx: Some(rx),
            chunk: Vec::new().into_iter(),
            handle: Some(handle),
            chunks: 0,
            blocked_waits: 0,
            depth,
            chunk_cap,
        }
    }

    /// The stream's buffering configuration: `(depth, chunk_cap)` —
    /// chunk slots in flight and items per chunk. Peak buffered items
    /// is their product.
    #[must_use]
    pub fn config(&self) -> (usize, usize) {
        (self.depth, self.chunk_cap)
    }

    /// Next item, refilling from the channel as chunks drain; `None`
    /// once the producer has finished and every chunk is consumed.
    pub fn next_item(&mut self) -> Option<T> {
        loop {
            if let Some(item) = self.chunk.next() {
                return Some(item);
            }
            // Non-blocking receive first, purely to observe
            // back-pressure: an empty channel here means this pull is
            // about to block on the producer.
            let rx = self.rx.as_ref()?;
            let received = match rx.try_recv() {
                TryRecv::Item(chunk) => Some(chunk),
                TryRecv::Empty => {
                    self.blocked_waits += 1;
                    rx.recv()
                }
                TryRecv::Disconnected => None,
            };
            match received {
                Some(chunk) => {
                    self.chunks += 1;
                    self.chunk = chunk.into_iter();
                }
                None => {
                    // Producer finished and dropped its sender.
                    self.rx = None;
                    return None;
                }
            }
        }
    }

    /// Next whole chunk, preserving item order with [`next_item`]: a
    /// partially consumed current chunk is returned first (its remaining
    /// items), then whole chunks come off the channel. `None` once the
    /// producer has finished and everything is consumed.
    ///
    /// Interleaving `next_chunk` and `next_item` is sound — the
    /// concatenation of everything returned is always the produced item
    /// sequence. Back-pressure accounting matches `next_item`: a pull
    /// that finds the channel empty counts one blocked wait.
    ///
    /// [`next_item`]: ChunkStream::next_item
    pub fn next_chunk(&mut self) -> Option<Vec<T>> {
        let rest: Vec<T> = std::mem::replace(&mut self.chunk, Vec::new().into_iter()).collect();
        if !rest.is_empty() {
            return Some(rest);
        }
        loop {
            let rx = self.rx.as_ref()?;
            let received = match rx.try_recv() {
                TryRecv::Item(chunk) => Some(chunk),
                TryRecv::Empty => {
                    self.blocked_waits += 1;
                    rx.recv()
                }
                TryRecv::Disconnected => None,
            };
            match received {
                Some(chunk) => {
                    self.chunks += 1;
                    // Producers only send non-empty chunks, but tolerate
                    // an empty one rather than return a confusing
                    // `Some(vec![])`.
                    if !chunk.is_empty() {
                        return Some(chunk);
                    }
                }
                None => {
                    self.rx = None;
                    return None;
                }
            }
        }
    }

    /// Back-pressure counters: `(chunks, blocked_waits)` — chunks pulled
    /// from the producer, and how many of those pulls found the channel
    /// empty and had to block.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.chunks, self.blocked_waits)
    }
}

impl<B: Backend, T: Send + 'static> Drop for ChunkStream<B, T> {
    fn drop(&mut self) {
        // Drop the receiver first so any blocked send in the producer
        // fails immediately, then reap the thread.
        self.rx = None;
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}
