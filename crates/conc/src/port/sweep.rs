//! The sweep scheduler's work-claiming protocol: workers race on an
//! atomic cursor for task indices and deposit results into per-task
//! slots.
//!
//! This is the protocol inside `primecache-sim::suite::run_sweep`.
//! Verified properties (see `crates/conc/tests/model_protocols.rs`):
//!
//! * every task index in `0..n_tasks` is claimed by exactly one worker,
//! * every slot is written exactly once ([`store_slot`] asserts it),
//! * no task is lost: when all workers have joined, every slot is full.

use crate::api::{AtomicUsizeApi, MutexApi};

/// A worker's claim loop: atomically claims ascending task indices
/// until the cursor passes `n_tasks`, running `work` for each claim.
///
/// `fetch_add` hands each index to exactly one worker, which is what
/// makes the exactly-once slot-write property hold; the model test
/// demonstrates that the obvious load-then-store "optimization" loses
/// it.
pub fn claim_loop(cursor: &impl AtomicUsizeApi, n_tasks: usize, mut work: impl FnMut(usize)) {
    loop {
        let i = cursor.fetch_add(1);
        if i >= n_tasks {
            break;
        }
        work(i);
    }
}

/// Deposits a finished task's result into its pre-sized slot.
///
/// # Panics
///
/// Panics when the slot is already occupied — two workers ran the same
/// task, which the claim protocol must make impossible.
pub fn store_slot<T>(slot: &impl MutexApi<Option<T>>, value: T) {
    slot.with(|s| {
        assert!(s.is_none(), "sweep slot written twice");
        *s = Some(value);
    });
}
