//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace builds in environments with no access to crates.io, and
//! nothing in it actually serializes through serde — the derives on config
//! and stats types exist so downstream users can wire up real serde by
//! swapping this shim for the real crate. The derives therefore expand to
//! nothing.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
