//! Offline stand-in for `serde`.
//!
//! The registry mirror is unreachable from some build environments, and the
//! workspace only ever *derives* `Serialize`/`Deserialize` — no format crate
//! (serde_json etc.) is present, so the impls are never called. This shim
//! provides the two marker traits and re-exports no-op derives so the
//! annotated types keep their public shape. Swapping the `serde` workspace
//! dependency back to the registry crate restores real serialization with
//! no source changes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
