//! Cross-layer tests of the static conflict-miss analyzer: symbolic
//! predictions vs brute-force enumeration, vs the cache simulator, and vs
//! the 23 workload models' measured set-index distributions.

use primecache::analyze::{
    certify_all, certify_expr, certify_kind, certify_skew_disp_bank, certify_skew_xor_bank,
    certify_xor_folded, lower_expr, model_of, xor_folded_model, IndexModel, Theorem1,
};
use primecache::cache::{Cache, CacheConfig, CacheSim};
use primecache::core::expr::{builtins, register_anonymous};
use primecache::core::index::{Geometry, HashKind, SetIndexer, XorFolded};
use primecache::core::metrics::set_histogram;
use primecache::workloads::all;
use primecache_check::prop::forall;

/// Brute-force universal-conflict test for a delta: `a` and `a + d`
/// collide for every sampled carry-free `a`.
fn brute_conflict(idx: &dyn SetIndexer, d: u64, in_bits: u32, rng_seed: u64) -> bool {
    let mask = (1u64 << in_bits) - 1;
    if idx.index(d) != idx.index(0) {
        return false;
    }
    let mut a = rng_seed | 1;
    for _ in 0..16 {
        a = a.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(d);
        let a_free = a & mask & !d;
        if idx.index(a_free + d) != idx.index(a_free) {
            return false;
        }
    }
    true
}

#[test]
fn null_space_predictions_match_brute_force_on_small_geometries() {
    // For every hash kind and every geometry with n_set <= 64, a randomly
    // drawn delta is a universal conflict stride exactly when the symbolic
    // model says so.
    forall(
        "null-space matches brute force",
        400,
        |rng| {
            (
                rng.range_u32(1, 7),       // index bits: 2..=64 sets
                rng.range_u64(1, 1 << 12), // candidate delta
                rng.next_u64(),            // sampling seed
            )
        },
        |&(k, d, seed)| {
            let geom = Geometry::new(1 << k);
            let in_bits = 12;
            for kind in HashKind::ALL {
                let model = model_of(kind, geom, in_bits);
                let idx = kind.build(geom);
                assert_eq!(
                    model.is_conflict_delta(d),
                    brute_conflict(idx.as_ref(), d, in_bits, seed),
                    "{kind}: {} sets, delta {d:#x}",
                    1u64 << k
                );
            }
        },
    );
}

#[test]
fn every_certified_stride_collides_in_the_real_indexer() {
    forall(
        "certified strides collide",
        200,
        |rng| (rng.range_u32(1, 7), rng.next_u64()),
        |&(k, seed)| {
            let geom = Geometry::new(1 << k);
            for kind in HashKind::ALL {
                let cert = certify_kind(kind, geom, 12);
                let idx = kind.build(geom);
                for &d in &cert.conflict_strides {
                    assert!(
                        brute_conflict(idx.as_ref(), d, 12, seed),
                        "{kind}: certified stride {d:#x} must collide"
                    );
                }
            }
        },
    );
}

#[test]
fn xor_pathology_derived_statically_and_confirmed_by_simulation() {
    // Statically: 2^11 + 1 generates the XOR null space for the paper's
    // 2048-set L2.
    let cert = certify_kind(HashKind::Xor, Geometry::new(2048), 26);
    assert_eq!(cert.smallest_conflict_stride(), Some(2049));
    assert_eq!(
        cert.theorem1,
        Theorem1::Fails {
            witness_stride: 2049
        }
    );

    // Dynamically: blocks i * 2049 (i < 2^11 keeps the multiples
    // carry-free) all collapse onto set 0 of a 4-way XOR L2, so eight of
    // them re-accessed in rounds thrash: every access misses.
    let eviction_blocks: Vec<u64> = (1..=8u64).map(|i| i * 2049).collect();
    let mut xor = Cache::new(CacheConfig::new(512 * 1024, 4, 64).with_hash(HashKind::Xor));
    for _ in 0..4 {
        for &b in &eviction_blocks {
            xor.access(b * 64, false);
        }
    }
    let xs = xor.stats().clone();
    assert_eq!(
        xs.misses, xs.accesses,
        "XOR must thrash on its null-space stride"
    );

    // The same addresses spread across a prime-modulo L2: after the cold
    // pass, every round hits.
    let mut pmod = Cache::new(CacheConfig::new(512 * 1024, 4, 64).with_hash(HashKind::PrimeModulo));
    for _ in 0..4 {
        for &b in &eviction_blocks {
            pmod.access(b * 64, false);
        }
    }
    let ps = pmod.stats().clone();
    assert_eq!(
        ps.misses,
        eviction_blocks.len() as u64,
        "pMod takes only the compulsory misses"
    );
}

#[test]
fn workload_distributions_stay_inside_the_static_image() {
    // Every workload's measured set-index histogram must fit the
    // statically predicted image: no workload ever touches a physical set
    // the analyzer proves unreachable (e.g. pMod sets >= 2039).
    let geom = Geometry::new(2048);
    let certs = certify_all(geom, geom, 26);
    for w in all() {
        let blocks: Vec<u64> = w
            .trace(30_000)
            .iter()
            .filter_map(primecache::trace::Event::addr)
            .map(|a| a / 64)
            .collect();
        for kind in HashKind::ALL {
            let cert = certs
                .iter()
                .find(|c| c.name == kind.label())
                .expect("certificate for every kind");
            let idx = kind.build(geom);
            let hist = set_histogram(idx.as_ref(), blocks.iter().copied());
            let n_set = usize::try_from(cert.n_set).expect("set count fits usize");
            for (set, &count) in hist.iter().enumerate() {
                assert!(
                    set < n_set || count == 0,
                    "{}/{kind}: set {set} outside the static image [0, {n_set}) \
                     received {count} accesses",
                    w.name
                );
            }
        }
    }
}

#[test]
fn dsl_lowered_kernel_equals_brute_force_null_space() {
    // For linear DSL expressions, the lowered GF(2) kernel basis must
    // span *exactly* the deltas that brute-force enumeration finds to be
    // universal conflict strides — no missing generators, no extras.
    let in_bits = 10u32;
    for k in [2u32, 3, 4] {
        let geom = Geometry::new(1 << k);
        for src in [
            builtins::traditional_src(geom),
            builtins::xor_src(geom),
            builtins::xor_folded_src(geom),
            builtins::skew_xor_bank_src(geom, 1),
        ] {
            let id = register_anonymous(&src).expect("builtin source compiles");
            let model = lower_expr(id.folded(), in_bits);
            let IndexModel::Linear(m) = &model else {
                panic!("`{src}` must lower to a linear model, got {model:?}");
            };
            // Enumerate the span of the kernel basis inside the window.
            let basis = m.kernel_basis();
            let mut span = std::collections::HashSet::new();
            for bits in 0..(1u64 << basis.len()) {
                let v = basis
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| bits >> i & 1 == 1)
                    .fold(0u64, |acc, (_, &b)| acc ^ b);
                span.insert(v);
            }
            let idx = id.indexer();
            for d in 1..(1u64 << in_bits) {
                let brute = brute_conflict(&idx, d, in_bits, 0x9E37_79B9);
                assert_eq!(
                    span.contains(&d),
                    brute,
                    "`{src}` ({} sets): kernel span vs brute force at delta {d:#x}",
                    1u64 << k
                );
                assert_eq!(
                    model.is_conflict_delta(d),
                    brute,
                    "`{src}` ({} sets): is_conflict_delta vs brute force at {d:#x}",
                    1u64 << k
                );
            }
        }
    }
}

#[test]
fn dsl_reexpressed_builtins_certify_identically_to_hard_coded_models() {
    // Every built-in scheme, re-expressed in the DSL, must yield a
    // certificate equal field-for-field (including the symbolic model)
    // to the one derived from its hand-coded model.
    let geom = Geometry::new(2048);
    let bank_geom = Geometry::new(512);
    let in_bits = 26;
    let mut cases = vec![
        (
            certify_kind(HashKind::Traditional, geom, in_bits),
            builtins::traditional_src(geom),
        ),
        (
            certify_kind(HashKind::Xor, geom, in_bits),
            builtins::xor_src(geom),
        ),
        (
            certify_kind(HashKind::PrimeModulo, geom, in_bits),
            builtins::pmod_src(geom),
        ),
        (
            certify_kind(HashKind::PrimeDisplacement, geom, in_bits),
            builtins::pdisp_src(geom, 9),
        ),
        (
            certify_xor_folded(geom, in_bits),
            builtins::xor_folded_src(geom),
        ),
    ];
    for bank in 0..4 {
        cases.push((
            certify_skew_xor_bank(bank_geom, bank, in_bits),
            builtins::skew_xor_bank_src(bank_geom, bank),
        ));
    }
    for factor in primecache::core::index::SKEW_DISP_FACTORS {
        cases.push((
            certify_skew_disp_bank(bank_geom, factor, in_bits),
            builtins::skew_disp_bank_src(bank_geom, factor),
        ));
    }
    for (hard, src) in cases {
        let id = register_anonymous(&src).expect("builtin source compiles");
        let dsl = certify_expr(hard.name.clone(), id.folded(), in_bits);
        assert!(dsl.exact, "`{src}` must lower to an exact family");
        assert_eq!(
            dsl, hard,
            "`{src}`: DSL-lowered certificate diverges from the \
             hand-coded model's"
        );
    }
}

#[test]
fn folded_model_is_exact_at_full_width() {
    // The 64-bit folded model matches XorFolded for blocks far above the
    // narrow analysis window.
    let geom = Geometry::new(2048);
    let model = xor_folded_model(geom, 64);
    let idx = XorFolded::new(geom);
    let mut a = 0x0123_4567_89AB_CDEFu64;
    for _ in 0..10_000 {
        a = a.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        assert_eq!(model.eval(a), idx.index(a), "a = {a:#x}");
    }
}
