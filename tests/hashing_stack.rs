//! Integration tests of the hashing stack: index functions + hardware
//! models + TLB + cache agreeing with each other end to end.

use primecache::cache::{Cache, CacheConfig, CacheSim, Tlb};
use primecache::core::hw::{IterativeLinear, Polynomial, TlbAssist, Wired2039};
use primecache::core::index::{Geometry, HashKind, PrimeModulo, SetIndexer};
use primecache::core::metrics::{balance, concentration, set_histogram, strided_addresses};
use primecache::primes::{is_prime, prev_prime};

#[test]
fn cache_set_attribution_matches_the_indexer() {
    // The set a pMod cache reports must equal the raw index function.
    let cfg = CacheConfig::new(512 * 1024, 4, 64).with_hash(HashKind::PrimeModulo);
    let cache = Cache::new(cfg);
    let pmod = PrimeModulo::new(Geometry::new(2048));
    for addr in (0..10_000_000u64).step_by(999_983) {
        assert_eq!(cache.set_of(addr) as u64, pmod.index(addr / 64));
    }
}

#[test]
fn hardware_units_agree_with_the_cache_index_path() {
    // Polynomial, iterative-linear, wired and TLB-assisted units all
    // produce the exact set the simulator uses.
    let geom = Geometry::new(2048);
    let pmod = PrimeModulo::new(geom);
    let poly = Polynomial::new(geom);
    let iter = IterativeLinear::new(geom, 0);
    let tlb = TlbAssist::new(2048, 4096, 64);
    for block in (0..(1u64 << 26)).step_by(131_071) {
        let want = pmod.index(block);
        assert_eq!(poly.reduce(block), want);
        assert_eq!(iter.reduce(block), want);
        assert_eq!(Wired2039::index(block), want);
        assert_eq!(tlb.index_addr(block * 64), want);
    }
}

#[test]
fn tlb_model_computes_correct_indexes_with_lru_pressure() {
    let mut tlb = Tlb::new(8, 4096, 2048, 64);
    // Walk far more pages than TLB entries.
    for addr in (0..(1u64 << 26)).step_by(4096 + 64) {
        assert_eq!(tlb.l2_index(addr), (addr / 64) % 2039);
    }
    assert!(tlb.stats().misses > 8, "pressure must evict entries");
    assert_eq!(tlb.stats().modulo_computations, tlb.stats().misses);
}

#[test]
fn balance_metric_predicts_cache_histograms() {
    // A stride with bad balance must produce a skewed cache histogram; a
    // stride with ideal balance a flat one. Checked through the *cache*,
    // not just the metric.
    let geom = Geometry::new(2048);
    let trad = HashKind::Traditional.build(geom);
    let addrs_bad = strided_addresses(512, 8192); // even stride: bad
    let addrs_good = strided_addresses(513, 8192); // odd stride: ideal

    let bal_bad = balance(&trad, addrs_bad.iter().copied());
    let bal_good = balance(&trad, addrs_good.iter().copied());
    assert!(bal_bad > 10.0 * bal_good);

    let hist_bad = set_histogram(&trad, addrs_bad.iter().copied());
    let hist_good = set_histogram(&trad, addrs_good.iter().copied());
    let used = |h: &[u64]| h.iter().filter(|&&c| c > 0).count();
    assert!(used(&hist_bad) * 100 < used(&hist_good) * 25);
}

#[test]
fn concentration_separates_pmod_from_xor_on_odd_strides() {
    // §5.1: on odd strides both achieve ideal balance, but only pMod has
    // ideal concentration — the paper's key anti-pathology argument.
    let geom = Geometry::new(2048);
    let pmod = HashKind::PrimeModulo.build(geom);
    let xor = HashKind::Xor.build(geom);
    let mut pmod_worse = 0;
    for stride in [3u64, 5, 7, 9, 11, 13, 15, 17] {
        let addrs = strided_addresses(stride, 8192);
        let c_pmod = concentration(&pmod, addrs.iter().copied());
        let c_xor = concentration(&xor, addrs.iter().copied());
        assert!(
            c_pmod < 1e-9,
            "stride {stride}: pMod concentration {c_pmod}"
        );
        if c_xor > 1.0 {
            pmod_worse += 1;
        }
    }
    assert!(
        pmod_worse >= 6,
        "XOR should concentrate on most odd strides"
    );
}

#[test]
fn prime_moduli_used_by_the_stack_are_prime() {
    for phys in [256u64, 512, 1024, 2048, 4096, 8192, 16384] {
        let n = prev_prime(phys).unwrap();
        assert!(is_prime(n));
        let cache =
            Cache::new(CacheConfig::new(phys * 4 * 64, 4, 64).with_hash(HashKind::PrimeModulo));
        assert_eq!(cache.n_set(), n, "phys = {phys}");
    }
}

#[test]
fn fragmentation_cost_is_negligible_in_practice() {
    // Running the same uniform stream through Base and pMod caches of the
    // paper's L2: the ~0.44% capacity loss must cost < 2% extra misses.
    let mut base = Cache::new(CacheConfig::new(512 * 1024, 4, 64));
    let mut pmod = Cache::new(CacheConfig::new(512 * 1024, 4, 64).with_hash(HashKind::PrimeModulo));
    // Cyclic working set just under capacity.
    for round in 0..6 {
        let _ = round;
        for i in 0..8000u64 {
            base.access(i * 64, false);
            pmod.access(i * 64, false);
        }
    }
    let m_base = base.stats().misses as f64;
    let m_pmod = pmod.stats().misses as f64;
    assert!(
        m_pmod <= m_base * 1.02 + 200.0,
        "fragmentation overhead too large: {m_pmod} vs {m_base}"
    );
}
