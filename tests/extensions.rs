//! Integration tests of the extension systems: prefetching, paging, miss
//! taxonomy, SRRIP, DRAM mapping, trace transforms and the SVG renderer.

use primecache::cache::paging::{PageMapper, PagePolicy};
use primecache::cache::{
    Cache, CacheConfig, CacheSim, Hierarchy, HierarchyConfig, InfiniteCache, L2Organization,
    ReplacementKind,
};
use primecache::mem::MemConfig;
use primecache::sim::experiments::{miss_taxonomy, run_workload_paged};
use primecache::sim::Scheme;
use primecache::trace::{interleave, offset_addresses, Event};
use primecache::workloads::by_name;

const REFS: u64 = 60_000;

#[test]
fn taxonomy_sums_are_coherent_across_schemes() {
    // Long enough that bt's steady-state conflicts dominate its cold misses.
    let bt = by_name("bt").unwrap();
    let base = miss_taxonomy(bt, Scheme::Base, 200_000);
    let pmod = miss_taxonomy(bt, Scheme::PrimeModulo, 200_000);
    // Compulsory and capacity are scheme-independent (same L1 filter).
    assert_eq!(base.compulsory, pmod.compulsory);
    assert_eq!(base.capacity, pmod.capacity);
    // bt's Base misses are conflict-dominated; pMod removes nearly all.
    assert!(base.conflict_fraction() > 0.5, "{base:?}");
    assert!(
        pmod.conflict * 4 < base.conflict.max(10),
        "{pmod:?} vs {base:?}"
    );
}

#[test]
fn prefetching_reduces_streaming_memory_time() {
    let swim = by_name("swim").unwrap();
    let machine = primecache::sim::MachineConfig::paper_default();
    let run = |depth: u32| {
        let cfg = machine
            .hierarchy_config(Scheme::Base)
            .with_prefetch_depth(depth);
        let mut h = Hierarchy::new(cfg);
        let mut d = primecache::mem::Dram::new(MemConfig::paper_default());
        let mut cpu = primecache::cpu::Cpu::new(primecache::cpu::CpuConfig::paper_default());
        cpu.run(swim.trace(REFS), &mut h, &mut d)
    };
    let plain = run(0);
    let prefetched = run(2);
    assert!(
        prefetched.mem_stall < plain.mem_stall,
        "prefetch {} vs plain {}",
        prefetched.mem_stall,
        plain.mem_stall
    );
}

#[test]
fn page_mapping_preserves_intra_page_conflicts() {
    // tree's 512-B padded nodes conflict *within* pages, so even a random
    // frame allocation keeps pMod's advantage (the ablation_paging story).
    let tree = by_name("tree").unwrap();
    let base = run_workload_paged(tree, Scheme::Base, 150_000, PagePolicy::Random, 4096);
    let pmod = run_workload_paged(tree, Scheme::PrimeModulo, 150_000, PagePolicy::Random, 4096);
    let speedup = base.breakdown.total() as f64 / pmod.breakdown.total() as f64;
    assert!(
        speedup > 1.3,
        "random paging must not erase tree's gain: {speedup}"
    );
}

#[test]
fn sequential_paging_dissolves_page_granular_alignment() {
    // bt's conflicts come from multi-MB-aligned arrays; first-touch
    // sequential frames destroy that alignment, so Base and pMod converge.
    let bt = by_name("bt").unwrap();
    let base = run_workload_paged(bt, Scheme::Base, 150_000, PagePolicy::Sequential, 4096);
    let pmod = run_workload_paged(
        bt,
        Scheme::PrimeModulo,
        150_000,
        PagePolicy::Sequential,
        4096,
    );
    let speedup = base.breakdown.total() as f64 / pmod.breakdown.total() as f64;
    assert!(
        (0.9..1.15).contains(&speedup),
        "sequential paging should neutralize bt's aligned conflicts: {speedup}"
    );
}

#[test]
fn srrip_resists_the_scan_that_thrashes_lru() {
    // A resident working set + an interleaved long scan: LRU loses the
    // working set, SRRIP keeps it.
    let run = |kind: ReplacementKind| {
        let mut c = Cache::new(CacheConfig::new(64 * 1024, 4, 64).with_replacement(kind));
        let hot: Vec<u64> = (0..512u64).map(|i| i * 64).collect(); // 32 KB hot
        let mut scan = 1 << 24;
        for _round in 0..40 {
            // The working set is *re-referenced* within its phase (that
            // re-touch is what SRRIP's protection keys on).
            for _ in 0..2 {
                for &a in &hot {
                    c.access(a, false);
                }
            }
            // 4 scan lines per set per round: enough to flush a 4-way LRU
            // set (2 hot + 4 > 4 ways) but absorbed by SRRIP's distant
            // insertion.
            for _ in 0..1024 {
                c.access(scan, false);
                scan += 64;
            }
        }
        c.stats().misses
    };
    let lru = run(ReplacementKind::Lru);
    let srrip = run(ReplacementKind::Srrip);
    assert!(
        srrip < lru * 9 / 10,
        "SRRIP {srrip} should beat LRU {lru} under scanning"
    );
}

#[test]
fn infinite_cache_lower_bounds_every_organization() {
    let mcf = by_name("mcf").unwrap();
    let trace = mcf.trace(REFS);
    let mut inf = InfiniteCache::new(64);
    let mut real = Cache::new(CacheConfig::new(512 * 1024, 4, 64));
    for ev in &trace {
        if let Some(a) = ev.addr() {
            inf.access(a, false);
            real.access(a, false);
        }
    }
    assert!(inf.stats().misses <= real.stats().misses);
    assert_eq!(inf.stats().accesses, real.stats().accesses);
}

#[test]
fn interleaved_traces_run_end_to_end() {
    let a = by_name("tree").unwrap().trace(20_000);
    let b = offset_addresses(by_name("swim").unwrap().trace(20_000), 0x80_0000_0000);
    let merged = interleave(a, b, 5_000);
    let machine = primecache::sim::MachineConfig::paper_default();
    let r = primecache::sim::run_trace(merged, Scheme::PrimeModulo, &machine);
    assert!(r.l1.accesses >= 40_000);
    assert!(r.breakdown.total() > 0);
}

#[test]
fn page_mapper_composes_with_the_hierarchy() {
    // Translating then simulating equals simulating the translated trace.
    let mut mapper = PageMapper::new(PagePolicy::Random, 4096);
    let mut h = Hierarchy::new(HierarchyConfig::paper_default(L2Organization::SetAssoc(
        CacheConfig::new(512 * 1024, 4, 64),
    )));
    let mut misses = 0u64;
    for i in 0..5_000u64 {
        let vaddr = i * 4096 + (i % 64) * 64;
        let paddr = mapper.translate(vaddr);
        if h.access(paddr, false) == primecache::cache::AccessOutcome::Memory {
            misses += 1;
        }
    }
    assert!(misses > 0);
    assert_eq!(mapper.mapped_pages(), 5_000);
    let _ = Event::Work(1); // silence unused-import lints in minimal builds
}
