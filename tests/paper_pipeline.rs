//! End-to-end integration tests of the headline paper claims, spanning
//! every crate: workload generation → hierarchy → timing → metrics.
//!
//! Trace lengths are kept small so the suite stays fast in debug builds;
//! the full-scale numbers come from the `reproduce` binary.

use primecache::core::metrics::uniformity_ratio;
use primecache::sim::experiments::{fig13_miss_distribution, sets_carrying_share};
use primecache::sim::{run_workload, Scheme};
use primecache::workloads::by_name;

// Short traces are dominated by cold misses; the conflict phenomena the
// paper studies need steady state, so shape-sensitive tests run longer.
const REFS: u64 = 60_000;
const REFS_STEADY: u64 = 160_000;

#[test]
fn tree_conflicts_vanish_under_prime_indexing() {
    let tree = by_name("tree").expect("registry has tree");
    let base = run_workload(tree, Scheme::Base, REFS_STEADY);
    let pmod = run_workload(tree, Scheme::PrimeModulo, REFS_STEADY);
    // Fig. 11: pMod eliminates nearly all of tree's misses.
    assert!(
        pmod.l2_misses() * 3 < base.l2_misses(),
        "pMod {} vs Base {}",
        pmod.l2_misses(),
        base.l2_misses()
    );
    // Fig. 7: and that translates into a large speedup.
    let speedup = base.breakdown.total() as f64 / pmod.breakdown.total() as f64;
    assert!(speedup > 1.5, "speedup {speedup}");
}

#[test]
fn fig13_shape_base_concentrates_pmod_spreads() {
    let base = fig13_miss_distribution(Scheme::Base, REFS_STEADY);
    let pmod = fig13_miss_distribution(Scheme::PrimeModulo, REFS_STEADY);
    let base_frac = sets_carrying_share(&base, 0.90);
    let pmod_frac = sets_carrying_share(&pmod, 0.90);
    // Paper: "vast majority of cache misses ... concentrated in about 10%
    // of the sets" under Base; pMod spreads them.
    assert!(
        base_frac < 0.2,
        "Base: 90% of misses in {base_frac:.2} of sets"
    );
    assert!(
        pmod_frac > 2.0 * base_frac,
        "pMod must spread misses: {pmod_frac:.2} vs {base_frac:.2}"
    );
    // And eliminate most of them outright.
    let base_total: u64 = base.iter().sum();
    let pmod_total: u64 = pmod.iter().sum();
    assert!(pmod_total * 2 < base_total);
}

#[test]
fn prime_hashing_is_safe_on_uniform_applications() {
    // Fig. 8 / Table 4: pMod and pDisp never slow a uniform app by more
    // than ~2-3%.
    for name in ["swim", "lu", "is", "parser", "gap"] {
        let w = by_name(name).unwrap();
        let base = run_workload(w, Scheme::Base, REFS);
        for scheme in [Scheme::PrimeModulo, Scheme::PrimeDisplacement] {
            let r = run_workload(w, scheme, REFS);
            let norm = r.breakdown.total() as f64 / base.breakdown.total() as f64;
            assert!(norm < 1.05, "{name}/{scheme}: normalized time {norm}");
        }
    }
}

#[test]
fn uniformity_classification_survives_the_full_pipeline() {
    // §4 through the *timing* pipeline rather than cache-only.
    for (name, expect_non_uniform) in [("tree", true), ("bt", true), ("swim", false), ("lu", false)]
    {
        let w = by_name(name).unwrap();
        // Full-coverage traces: short ones see only part of a workload's
        // footprint (e.g. lu's early panels) and skew the histogram.
        let r = run_workload(w, Scheme::Base, REFS_STEADY);
        let cv = uniformity_ratio(&r.l2.set_accesses);
        assert_eq!(cv > 0.5, expect_non_uniform, "{name}: cv = {cv:.3}");
    }
}

#[test]
fn eight_way_is_not_an_effective_substitute() {
    // §5.2: "increasing cache associativity without increasing the cache
    // size is not an effective method to eliminate conflict misses."
    let bt = by_name("bt").unwrap();
    let base = run_workload(bt, Scheme::Base, REFS_STEADY);
    let eight = run_workload(bt, Scheme::EightWay, REFS_STEADY);
    let pmod = run_workload(bt, Scheme::PrimeModulo, REFS_STEADY);
    let eight_gain = base.breakdown.total() as f64 / eight.breakdown.total() as f64;
    let pmod_gain = base.breakdown.total() as f64 / pmod.breakdown.total() as f64;
    assert!(eight_gain < 1.1, "8-way gain {eight_gain}");
    assert!(
        pmod_gain > eight_gain + 0.2,
        "pMod {pmod_gain} vs 8-way {eight_gain}"
    );
}

#[test]
fn skewed_cache_pays_with_pathological_cases() {
    // Fig. 10: the skewed caches slow some uniform apps (bzip2 is the
    // canonical victim); pMod does not.
    let bzip2 = by_name("bzip2").unwrap();
    let base = run_workload(bzip2, Scheme::Base, REFS_STEADY);
    let skw = run_workload(bzip2, Scheme::SkewedPrimeDisplacement, REFS_STEADY);
    let pmod = run_workload(bzip2, Scheme::PrimeModulo, REFS_STEADY);
    let skw_norm = skw.breakdown.total() as f64 / base.breakdown.total() as f64;
    let pmod_norm = pmod.breakdown.total() as f64 / base.breakdown.total() as f64;
    assert!(
        skw_norm > 1.005,
        "skewed should leak misses on bzip2: {skw_norm}"
    );
    assert!(pmod_norm < 1.01, "pMod must stay safe: {pmod_norm}");
}

#[test]
fn only_skewing_helps_the_scattered_block_workloads() {
    // §5.3: "With cg and mst, only the skewed associative schemes are able
    // to obtain speedups."
    let mst = by_name("mst").unwrap();
    let base = run_workload(mst, Scheme::Base, REFS);
    let pmod = run_workload(mst, Scheme::PrimeModulo, REFS);
    let skw = run_workload(mst, Scheme::Skewed, REFS);
    let pmod_norm = pmod.breakdown.total() as f64 / base.breakdown.total() as f64;
    let skw_norm = skw.breakdown.total() as f64 / base.breakdown.total() as f64;
    assert!(
        pmod_norm > 0.95,
        "single hashes cannot fix mst: {pmod_norm}"
    );
    assert!(skw_norm < 0.9, "skewing must help mst: {skw_norm}");
}

#[test]
fn fully_associative_lower_bounds_conflict_misses() {
    // Figs. 11/12: FA removes all conflict misses; hashed caches approach
    // it on the conflict-dominated apps.
    let bt = by_name("bt").unwrap();
    let base = run_workload(bt, Scheme::Base, REFS_STEADY);
    let fa = run_workload(bt, Scheme::FullyAssociative, REFS_STEADY);
    let pmod = run_workload(bt, Scheme::PrimeModulo, REFS_STEADY);
    assert!(fa.l2_misses() < base.l2_misses());
    // pMod gets within 2x of the FA floor on bt.
    assert!(pmod.l2_misses() <= fa.l2_misses() * 2);
}
