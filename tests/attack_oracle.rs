//! The attack differential oracle at the workspace seam.
//!
//! The static analyzer derives each scheme's index model from its
//! definition; the attack engine reconstructs it from nothing but
//! simulated conflict observations. This test pins their agreement —
//! `canonicalize(recovered) == canonicalize(static)` — for every
//! built-in scheme and a corpus of DSL `expr:` schemes, pins the honest
//! Opaque verdicts (skewed organizations, non-algebraic expressions),
//! and checks the versioned attack-report JSON.

use primecache::analyze::canonicalize;
use primecache::attack::{
    attack_report_json, eviction_cost, recover, AttackEntry, EvictConfig, RecoveryConfig, Verdict,
};
use primecache::core::expr::register_anonymous;
use primecache::sim::{static_model, MachineConfig, Scheme, SimOracle, PROBE_BITS};

fn recover_scheme(machine: &MachineConfig, scheme: Scheme) -> (primecache::attack::Recovery, bool) {
    let mut oracle = SimOracle::direct(machine, scheme, PROBE_BITS);
    let rec = recover(&mut oracle, &RecoveryConfig::default());
    let statik = static_model(machine, scheme, PROBE_BITS);
    let agrees = rec.verdict.matches_static(statik.as_ref());
    (rec, agrees)
}

#[test]
fn differential_oracle_is_green_for_every_builtin_scheme() {
    let machine = MachineConfig::paper_default();
    for scheme in Scheme::ALL {
        let (rec, agrees) = recover_scheme(&machine, scheme);
        assert!(
            agrees,
            "{scheme}: recovered {:?} disagrees with the static model",
            rec.verdict
        );
        // The skewed organizations are the only honest Opaque verdicts.
        let skewed = matches!(scheme, Scheme::Skewed | Scheme::SkewedPrimeDisplacement);
        assert_eq!(
            matches!(rec.verdict, Verdict::Opaque { .. }),
            skewed,
            "{scheme}: unexpected verdict family"
        );
        assert!(
            rec.cost.probes > 0,
            "{scheme}: free recovery is implausible"
        );
    }
}

#[test]
fn differential_oracle_is_green_for_the_dsl_corpus() {
    let machine = MachineConfig::paper_default();
    // One representative per recoverable model family, plus variants
    // with non-canonical spellings the fold/lowering must normalize.
    let corpus = [
        "a % 2039",
        "a % 1021",
        "a & 2047",
        "(a ^ (a >> 11)) & 2047",
        "((9 * (a >> 11)) + a) & 2047",
    ];
    for src in corpus {
        let id = register_anonymous(src).expect("corpus expression compiles");
        let scheme = Scheme::Expr(id);
        let (rec, agrees) = recover_scheme(&machine, scheme);
        assert!(
            agrees,
            "expr `{src}`: recovered {:?} disagrees with the static model",
            rec.verdict
        );
        assert!(
            matches!(rec.verdict, Verdict::Model(_)),
            "expr `{src}`: expected an exact recovered model"
        );
    }
}

#[test]
fn opaque_expression_never_panics_and_matches_the_opaque_static_model() {
    let machine = MachineConfig::paper_default();
    // Mixes residue and shifted-XOR structure: lowers to the Opaque
    // fallback statically, and no recovery hypothesis fits it.
    let id = register_anonymous("((a % 2039) ^ (a >> 13)) & 2047").expect("compiles");
    let scheme = Scheme::Expr(id);
    let (rec, agrees) = recover_scheme(&machine, scheme);
    let Verdict::Opaque { reasons } = &rec.verdict else {
        panic!("expected an Opaque verdict, got {:?}", rec.verdict);
    };
    assert!(!reasons.is_empty(), "Opaque verdicts must carry evidence");
    assert!(agrees, "static Opaque and recovered Opaque must agree");
}

#[test]
fn eviction_cost_ranks_pmod_above_the_naive_tier_attack() {
    let machine = MachineConfig::paper_default();
    let mut naive_refs = std::collections::HashMap::new();
    for scheme in [Scheme::Base, Scheme::Xor, Scheme::PrimeModulo] {
        let mut native = SimOracle::native(&machine, scheme, PROBE_BITS);
        let cost = eviction_cost(
            &mut native,
            None,
            primecache::core::probe::ProbeCost::default(),
            &EvictConfig::default(),
        );
        naive_refs.insert(scheme.label(), cost.tier("naive-stride").cloned());
    }
    // Base and XOR fall to the stride ladder; pMod resists it outright
    // (Theorem 1 made quantitative) and needs the random-pool tier.
    assert!(naive_refs["Base"].as_ref().unwrap().success);
    assert!(naive_refs["XOR"].as_ref().unwrap().success);
    assert!(!naive_refs["pMod"].as_ref().unwrap().success);
}

#[test]
fn attack_report_json_is_versioned_and_well_formed() {
    let machine = MachineConfig::paper_default();
    let scheme = Scheme::PrimeModulo;
    let mut direct = SimOracle::direct(&machine, scheme, PROBE_BITS);
    let recovery = recover(&mut direct, &RecoveryConfig::default());
    let statik = static_model(&machine, scheme, PROBE_BITS);
    let agrees_static = recovery.verdict.matches_static(statik.as_ref());
    let informed = match &recovery.verdict {
        Verdict::Model(m) => Some(m.clone()),
        Verdict::Opaque { .. } => None,
    };
    let mut native = SimOracle::native(&machine, scheme, PROBE_BITS);
    let eviction = eviction_cost(
        &mut native,
        informed.as_ref(),
        recovery.cost,
        &EvictConfig::default(),
    );
    let entry = AttackEntry {
        scheme: scheme.label().to_owned(),
        recovery,
        agrees_static,
        static_canonical: statik.as_ref().map(canonicalize),
        eviction,
    };
    let json = attack_report_json(std::slice::from_ref(&entry));
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"schema\":\"primecache.attack-report\""));
    assert!(json.contains("\"version\":1"));
    assert!(json.contains("\"scheme\":\"pMod\""));
    assert!(json.contains("\"modulus\":2039"));
    assert!(json.contains("\"agrees_static\":true"));
    assert!(json.contains("\"tier\":\"informed\""));
    // Braces and brackets balance — the report is parseable JSON.
    let depth_ok = |open: char, close: char| {
        let mut depth = 0i64;
        for c in json.chars() {
            if c == open {
                depth += 1;
            } else if c == close {
                depth -= 1;
                assert!(depth >= 0, "unbalanced {close}");
            }
        }
        depth == 0
    };
    assert!(depth_ok('{', '}'));
    assert!(depth_ok('[', ']'));
}
