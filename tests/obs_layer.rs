//! Integration tests for the observability layer (PR 4).
//!
//! Exercises the `obs` feature through the umbrella crate exactly as an
//! external consumer would: the self-describing [`RunReport`] must
//! survive a JSON round trip, and the recorder's hot counters must match
//! the simulator's own `stats.rs` aggregates bit-exactly — observation
//! is a read-only tap, never a second bookkeeping system that can drift.

use primecache::obs::{ObsConfig, RunReport, RUN_REPORT_SCHEMA, RUN_REPORT_VERSION};
use primecache::sim::observe::{observed_report, run_workload_observed};
use primecache::sim::Scheme;
use primecache::workloads::by_name;

#[test]
fn run_report_round_trips_through_json() {
    let (report, _recorder) = observed_report(
        by_name("tree").unwrap(),
        Scheme::PrimeModulo,
        20_000,
        ObsConfig::default(),
    );
    let text = report.to_json().render_pretty();
    let parsed = RunReport::from_json_str(&text).expect("report JSON parses back");
    assert_eq!(parsed, report);
    assert_eq!(parsed.schema, RUN_REPORT_SCHEMA);
    assert_eq!(parsed.version, RUN_REPORT_VERSION);

    // Compact rendering round-trips too.
    let compact = report.to_json().render();
    assert_eq!(RunReport::from_json_str(&compact).unwrap(), report);
}

#[test]
fn report_rejects_foreign_schema() {
    let (report, _recorder) = observed_report(
        by_name("tree").unwrap(),
        Scheme::Base,
        5_000,
        ObsConfig::default(),
    );
    let text = report
        .to_json()
        .render()
        .replace(RUN_REPORT_SCHEMA, "someone-elses.schema");
    assert!(RunReport::from_json_str(&text).is_err());
}

#[test]
fn obs_miss_class_metrics_match_stats_aggregates() {
    // Three workloads spanning the paper's behaviour classes: pointer
    // chasing (tree), strided numeric (swim), and the worst non-uniform
    // conflict case (mcf).
    for name in ["tree", "swim", "mcf"] {
        let w = by_name(name).unwrap();
        for scheme in [Scheme::Base, Scheme::PrimeModulo] {
            let run = run_workload_observed(w, scheme, 25_000, ObsConfig::default());
            let m = &run.metrics;
            let counter = |key: &str| {
                m.counter(key)
                    .unwrap_or_else(|| panic!("metric {key} missing ({name})"))
            };

            assert_eq!(counter("cache.l1.accesses"), run.result.l1.accesses);
            assert_eq!(counter("cache.l1.hits"), run.result.l1.hits);
            assert_eq!(counter("cache.l1.misses"), run.result.l1.misses);
            assert_eq!(counter("cache.l2.demand_accesses"), run.result.l2.accesses);
            assert_eq!(counter("cache.l2.demand_hits"), run.result.l2.hits);
            assert_eq!(counter("cache.l2.demand_misses"), run.result.l2.misses);
            assert_eq!(counter("dram.reads"), run.result.dram.reads);
            assert_eq!(counter("dram.writes"), run.result.dram.writes);
            assert_eq!(counter("dram.row_hits"), run.result.dram.row_hits);
        }
    }
}

#[test]
fn report_miss_totals_match_embedded_metrics() {
    let (report, _recorder) = observed_report(
        by_name("mcf").unwrap(),
        Scheme::Xor,
        20_000,
        ObsConfig::default(),
    );
    assert_eq!(
        report.metrics.counter("cache.l2.demand_misses"),
        Some(report.l2.misses)
    );
    assert_eq!(
        report.metrics.counter("cache.l1.misses"),
        Some(report.l1.misses)
    );
    assert_eq!(
        report.metrics.counter("dram.reads"),
        Some(report.dram.reads)
    );
}
