//! Integration tests of the experiment framework (sweeps, Table 4,
//! figure drivers).

use primecache::core::index::HashKind;
use primecache::sim::experiments::{fig5_balance, fig6_concentration};
use primecache::sim::suite::{run_sweep, table4};
use primecache::sim::Scheme;
use primecache::workloads::{all, non_uniform_names};

const REFS: u64 = 60_000;

#[test]
fn sweep_produces_a_full_matrix() {
    let schemes = [Scheme::Base, Scheme::PrimeModulo, Scheme::Skewed];
    let sweep = run_sweep(&schemes, REFS);
    assert_eq!(sweep.cells.len(), 23);
    for w in all() {
        for s in schemes {
            let cell = sweep
                .get(w.name, s)
                .unwrap_or_else(|| panic!("missing cell {}/{}", w.name, s.label()));
            assert_eq!(cell.workload, w.name);
            assert!(cell.result.breakdown.total() > 0);
            assert!(cell.result.l1.accesses >= REFS);
        }
    }
}

#[test]
fn speedups_and_normalized_times_are_reciprocal() {
    let sweep = run_sweep(&[Scheme::Base, Scheme::PrimeModulo], REFS);
    for w in all() {
        let n = sweep.normalized_time(w.name, Scheme::PrimeModulo).unwrap();
        let s = sweep.speedup(w.name, Scheme::PrimeModulo).unwrap();
        assert!((n * s - 1.0).abs() < 1e-9, "{}: {n} * {s}", w.name);
    }
}

#[test]
fn table4_pmod_beats_base_on_non_uniform_average() {
    let sweep = run_sweep(&[Scheme::Base, Scheme::PrimeModulo], REFS);
    let rows = table4(&sweep, &[Scheme::PrimeModulo]);
    let r = &rows[0];
    assert!(
        r.non_uniform.1 > 1.15,
        "avg non-uniform speedup {}",
        r.non_uniform.1
    );
    // Uniform apps stay near 1.0 on average.
    assert!(r.uniform.1 > 0.9 && r.uniform.1 < 1.2, "{:?}", r.uniform);
    // pMod's pathological count stays at most 1 (Table 4).
    assert!(r.pathological <= 2, "{} pathological cases", r.pathological);
}

#[test]
fn non_uniform_group_gains_more_than_uniform_group() {
    let sweep = run_sweep(&[Scheme::Base, Scheme::PrimeModulo], REFS);
    let nu = non_uniform_names();
    let avg = |names: &[&str]| {
        let s: f64 = names
            .iter()
            .filter_map(|n| sweep.speedup(n, Scheme::PrimeModulo))
            .sum();
        s / names.len() as f64
    };
    let uniform: Vec<&str> = all()
        .iter()
        .filter(|w| !w.expected_non_uniform)
        .map(|w| w.name)
        .collect();
    assert!(
        avg(&nu) > avg(&uniform) + 0.1,
        "non-uniform {} vs uniform {}",
        avg(&nu),
        avg(&uniform)
    );
}

#[test]
fn fig5_sweep_matches_section_3_3_analysis() {
    let max_stride = 256;
    let trad = fig5_balance(HashKind::Traditional, max_stride);
    let pmod = fig5_balance(HashKind::PrimeModulo, max_stride);
    // Traditional: bad on every even stride, ideal on every odd one.
    for p in &trad {
        if p.stride % 2 == 0 {
            assert!(p.value > 1.2, "stride {}: {}", p.stride, p.value);
        } else {
            assert!(p.value < 1.05, "stride {}: {}", p.stride, p.value);
        }
    }
    // pMod: ideal everywhere below n_set.
    assert!(pmod.iter().all(|p| p.value < 1.05));
}

#[test]
fn fig6_sweep_ranks_the_functions_like_the_paper() {
    let max_stride = 256;
    let count_bad = |kind| {
        fig6_concentration(kind, max_stride)
            .iter()
            .filter(|p| p.value > 1.0)
            .count()
    };
    let trad = count_bad(HashKind::Traditional);
    let xor = count_bad(HashKind::Xor);
    let pmod = count_bad(HashKind::PrimeModulo);
    let pdisp = count_bad(HashKind::PrimeDisplacement);
    // §5.1: pMod ideal everywhere; traditional bad on even strides only;
    // XOR and pDisp bad on many strides.
    assert_eq!(pmod, 0);
    assert!((120..=136).contains(&trad), "traditional: {trad}");
    assert!(
        xor > trad,
        "XOR ({xor}) must be worse than traditional ({trad})"
    );
    assert!(
        pdisp > trad,
        "pDisp concentration is non-ideal on most strides"
    );
}
