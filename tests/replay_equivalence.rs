//! Recorded-replay-vs-live differential battery.
//!
//! The generate-once/replay-everywhere sweep path (record each workload
//! into the compact encoded trace store, feed every scheme from replay
//! cursors) must be *bit-identical* to live streaming: the same event
//! sequence, the same chunk cadence, the same simulation results for
//! every workload and every scheme, the same observability counters.
//! This battery pins that equivalence so a future codec or store change
//! that drops, reorders, or corrupts a single event fails loudly here
//! instead of silently skewing the paper's figures.
//!
//! The `REPLAY_REFS` environment variable scales the per-workload
//! reference count (default 2 500) so CI can run a fast smoke pass
//! (`ci/replay_smoke.sh`) without a separate test body.

use primecache::obs::ObsConfig;
use primecache::sim::observe::{run_workload_observed, run_workload_observed_replayed};
use primecache::sim::{run_trace, run_workload, run_workload_recorded, MachineConfig, Scheme};
use primecache::trace::{EncodedTrace, Event};
use primecache::workloads::{all, TraceStore};

/// References per workload; override with `REPLAY_REFS=N`.
fn replay_refs() -> u64 {
    std::env::var("REPLAY_REFS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_500)
}

/// Every aggregate a run produces must agree between live and replay.
fn assert_results_equal(
    replayed: &primecache::sim::RunResult,
    live: &primecache::sim::RunResult,
    ctx: &str,
) {
    assert_eq!(replayed.breakdown, live.breakdown, "breakdown {ctx}");
    assert_eq!(replayed.l1, live.l1, "L1 stats {ctx}");
    assert_eq!(replayed.l2, live.l2, "L2 stats {ctx}");
    assert_eq!(replayed.dram, live.dram, "DRAM stats {ctx}");
}

#[test]
fn encoded_replay_reproduces_every_live_stream() {
    let refs = replay_refs();
    for w in all() {
        let live: Vec<Event> = w.events(refs).collect();
        let trace = w.record(refs);
        let replayed: Vec<Event> = trace.replay().collect();
        assert_eq!(
            replayed, live,
            "{}: replay diverged from live stream",
            w.name
        );
        // The compact encoding actually is compact: well under the raw
        // 16-byte in-memory representation.
        assert!(
            trace.bytes_per_event() < 5.0,
            "{}: {:.2} bytes/event",
            w.name,
            trace.bytes_per_event()
        );
    }
}

#[test]
fn replayed_runs_match_live_on_all_workloads_and_schemes() {
    let refs = replay_refs();
    for w in all() {
        let trace = w.record(refs);
        let decoded: Vec<Event> = trace.replay().collect();
        for &scheme in &Scheme::ALL {
            let live = run_workload(w, scheme, refs);
            let replayed = run_workload_recorded(w, scheme, refs);
            let ctx = format!("{}/{}", w.name, scheme.label());
            assert_results_equal(&replayed, &live, &ctx);
            // The same recorded trace replayed through the recorded-run
            // entry point must also agree (one record, many replays —
            // the sweep's actual shape).
            let from_store =
                primecache::sim::run_recorded(&trace, scheme, &MachineConfig::paper_default());
            assert_results_equal(&from_store, &live, &format!("{ctx} (shared record)"));
            // The bench's decode-once-per-workload shape drives the
            // slice driver straight off the materialized buffer; that
            // path must be bit-identical too.
            let from_slice = run_trace(
                decoded.iter().copied(),
                scheme,
                &MachineConfig::paper_default(),
            );
            assert_results_equal(&from_slice, &live, &format!("{ctx} (materialized)"));
        }
    }
}

#[test]
fn replay_preserves_observability_counters_and_stream_parity() {
    let refs = replay_refs();
    for name in ["tree", "mcf", "swim"] {
        let w = primecache::workloads::by_name(name).unwrap();
        let live = run_workload_observed(w, Scheme::PrimeModulo, refs, ObsConfig::default());
        let replayed =
            run_workload_observed_replayed(w, Scheme::PrimeModulo, refs, ObsConfig::default());
        assert_results_equal(&replayed.result, &live.result, name);
        // Exact hot counters, not just aggregates.
        assert_eq!(live.recorder.hot, replayed.recorder.hot, "{name}");
        // Replay keeps the live chunk cadence but never blocks and has
        // no channel.
        let m = &replayed.metrics;
        assert_eq!(
            m.counter("stream.chunks"),
            live.metrics.counter("stream.chunks"),
            "{name}"
        );
        assert_eq!(m.counter("stream.blocked_waits"), Some(0), "{name}");
        assert_eq!(m.counter("stream.channel_depth"), Some(0), "{name}");
        assert_eq!(m.counter("trace_store.records"), Some(1), "{name}");
        assert_eq!(m.counter("trace_store.replays"), Some(1), "{name}");
    }
}

#[test]
fn store_replays_are_independent_and_counted() {
    let refs = replay_refs();
    let store = TraceStore::record_all(all(), refs);
    assert_eq!(store.records(), all().len() as u64);
    // Two replays of the same record are identical (cursors don't share
    // mutable state) and both are counted.
    let a: Vec<Event> = store.replay("mcf").unwrap().collect();
    let b: Vec<Event> = store.replay("mcf").unwrap().collect();
    assert_eq!(a, b);
    assert_eq!(store.replays(), 2);
    assert!(store.encoded_bytes() > 0);
    assert_eq!(store.stats().target_refs, refs);
}

#[test]
fn on_disk_framing_round_trips_a_recorded_workload() {
    let refs = replay_refs();
    let w = primecache::workloads::by_name("equake").unwrap();
    let trace = w.record(refs);
    let bytes = trace.to_bytes();
    let back = EncodedTrace::from_bytes(&bytes).expect("framed trace validates");
    assert_eq!(back.events(), trace.events());
    assert_eq!(back.refs(), trace.refs());
    assert_eq!(back.chunk_events(), trace.chunk_events());
    let original: Vec<Event> = trace.replay().collect();
    let reloaded: Vec<Event> = back.replay().collect();
    assert_eq!(reloaded, original, "framing must be lossless");
    // Corruption is rejected, not misdecoded.
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    assert!(
        EncodedTrace::from_bytes(&bad).is_err(),
        "bad magic accepted"
    );
    assert!(
        EncodedTrace::from_bytes(&bytes[..bytes.len() - 1]).is_err(),
        "truncated frame accepted"
    );
}
