//! Scalar-vs-batched differential battery.
//!
//! The monomorphized, chunk-batched drivers behind
//! [`primecache::sim::run_workload`] must be *bit-identical* to the
//! dynamically-dispatched reference path
//! ([`primecache::sim::run_trace_reference`]) — same stats, same
//! eviction/writeback order, same observability counters, same config
//! fingerprints. This battery pins that equivalence over the whole
//! workload suite and every shipped scheme, so a future hot-path
//! "optimization" that reorders a writeback or drops a counter fails
//! loudly here instead of silently skewing the paper's figures.

use primecache::cache::{
    bank_disp_factor, Cache, FullyAssociative, Hierarchy, HierarchyConfig, L2Organization, L2Sim,
    SkewHashKind, SkewedCache, NO_HINT,
};
use primecache::core::expr::register_anonymous;
use primecache::core::index::{
    Geometry, HashKind, PrimeDisplacement, PrimeModulo, SetIndexer, SkewDispBank, SkewXorBank,
    Traditional, Xor,
};
use primecache::obs::ObsConfig;
use primecache::sim::observe::run_workload_observed;
use primecache::sim::{run_trace_reference, run_workload, MachineConfig, Scheme};
use primecache::workloads::all;

/// References per workload for the full-suite sweep. Small enough that
/// 23 workloads x 8 schemes x 2 drivers stays a fast debug-profile run,
/// large enough to fill both cache levels and force evictions.
const SUITE_REFS: u64 = 2_500;

/// The paper's miss metric plus every other aggregate a run produces
/// must agree between the two drivers.
fn assert_results_equal(
    batched: &primecache::sim::RunResult,
    reference: &primecache::sim::RunResult,
    ctx: &str,
) {
    assert_eq!(batched.breakdown, reference.breakdown, "breakdown {ctx}");
    assert_eq!(batched.l1, reference.l1, "L1 stats {ctx}");
    assert_eq!(batched.l2, reference.l2, "L2 stats {ctx}");
    assert_eq!(batched.dram, reference.dram, "DRAM stats {ctx}");
}

#[test]
fn batched_matches_reference_on_all_workloads_and_schemes() {
    let machine = MachineConfig::paper_default();
    for w in all() {
        for &scheme in &Scheme::ALL {
            let batched = run_workload(w, scheme, SUITE_REFS);
            let reference = run_trace_reference(w.trace(SUITE_REFS), scheme, &machine);
            let ctx = format!("{}/{}", w.name, scheme.label());
            assert_results_equal(&batched, &reference, &ctx);
            assert!(batched.l1.accesses >= SUITE_REFS, "{ctx}: short trace");
        }
    }
}

/// A write-heavy synthetic reference stream: strided sweeps at three
/// strides (two conflicting in a power-of-two L2) interleaved with a
/// hot reused window, ~2/3 stores. Deterministic, heavy on evictions of
/// dirty lines — exactly what exposes a writeback-order divergence.
fn write_heavy_refs(n: usize) -> Vec<(u64, bool)> {
    let mut out = Vec::with_capacity(n);
    let mut x = 0x2545_f491_4f6c_dd1du64;
    for i in 0..n {
        // xorshift* keeps the pattern deterministic but irregular.
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let r = x.wrapping_mul(0x2545_f491_4f6c_dd1d);
        let addr = match i % 4 {
            0 => (i as u64) * 4096,             // page-strided sweep (conflicts)
            1 => (i as u64) * 96,               // off-power-of-two stride
            2 => (r % 512) * 64,                // hot reused window
            _ => 0x4000_0000 + (i as u64) * 64, // cold sequential fills
        };
        out.push((addr, !r.is_multiple_of(3)));
    }
    out
}

/// Feeds the same reference stream to a monomorphized (typed-L2,
/// hinted) hierarchy and the boxed `dyn` reference hierarchy, draining
/// and diffing the *complete* memory-write sequence after every access.
///
/// `hint` mirrors the batched drivers: the set-associative schemes
/// precompute the L2 set index with a copy of the cache's own index
/// function; skewed/FA pass [`NO_HINT`].
fn diff_writeback_sequences<X: L2Sim>(
    hcfg: HierarchyConfig,
    l2: X,
    hint: impl Fn(u64) -> u32,
    label: &str,
) {
    let l1 = Cache::with_typed(
        hcfg.l1,
        Traditional::new(Geometry::new(hcfg.l1.n_set_phys())),
    );
    let mut mono = Hierarchy::with_parts(hcfg, l1, l2);
    let mut reference = Hierarchy::new(hcfg);
    let l2_line = match hcfg.l2 {
        L2Organization::SetAssoc(c) => c.line_bytes(),
        L2Organization::Skewed(c) => c.line_bytes(),
        L2Organization::FullyAssociative { line_bytes, .. } => line_bytes,
    };
    for (i, &(addr, write)) in write_heavy_refs(20_000).iter().enumerate() {
        let m = mono.access_hinted(addr, write, hint(addr / l2_line));
        let r = reference.access(addr, write);
        assert_eq!(m, r, "{label}: outcome diverged at access {i} ({addr:#x})");
        assert_eq!(
            mono.take_memory_writes(),
            reference.take_memory_writes(),
            "{label}: writeback sequence diverged at access {i} ({addr:#x})"
        );
    }
    assert_eq!(mono.l1_stats(), reference.l1_stats(), "{label}: L1 stats");
    assert_eq!(mono.l2_stats(), reference.l2_stats(), "{label}: L2 stats");
}

#[test]
fn writeback_sequences_identical_scalar_vs_batched() {
    let machine = MachineConfig::paper_default();
    // The built-in schemes plus a DSL-compiled one, so the expression
    // closure's hinted fast path is held to the same writeback-order
    // contract as the hand-written indexers.
    let expr_pmod = register_anonymous("a % 2039").expect("pMod source compiles");
    let mut schemes = Scheme::ALL.to_vec();
    schemes.push(Scheme::Expr(expr_pmod));
    for &scheme in &schemes {
        let hcfg = machine.hierarchy_config(scheme);
        let label = scheme.label();
        // Mirror the once-per-run dispatch in the sim crate: same typed
        // L2, same hinter.
        match hcfg.l2 {
            L2Organization::SetAssoc(cfg) => {
                let geom = Geometry::new(cfg.n_set_phys());
                #[allow(clippy::cast_possible_truncation)]
                match cfg.hash() {
                    HashKind::Traditional => {
                        let ix = Traditional::new(geom);
                        diff_writeback_sequences(
                            hcfg,
                            Cache::with_typed(cfg, ix),
                            |b| ix.index(b) as u32,
                            label,
                        );
                    }
                    HashKind::Xor => {
                        let ix = Xor::new(geom);
                        diff_writeback_sequences(
                            hcfg,
                            Cache::with_typed(cfg, ix),
                            |b| ix.index(b) as u32,
                            label,
                        );
                    }
                    HashKind::PrimeModulo => {
                        let ix = PrimeModulo::new(geom);
                        diff_writeback_sequences(
                            hcfg,
                            Cache::with_typed(cfg, ix),
                            |b| ix.index(b) as u32,
                            label,
                        );
                    }
                    HashKind::PrimeDisplacement => {
                        let ix = PrimeDisplacement::paper_default(geom);
                        diff_writeback_sequences(
                            hcfg,
                            Cache::with_typed(cfg, ix),
                            |b| ix.index(b) as u32,
                            label,
                        );
                    }
                    HashKind::Expr(id) => {
                        let ix = id.indexer();
                        diff_writeback_sequences(
                            hcfg,
                            Cache::with_typed(cfg, ix),
                            |b| ix.index(b) as u32,
                            label,
                        );
                    }
                }
            }
            L2Organization::Skewed(cfg) => match cfg.hash() {
                SkewHashKind::Xor => diff_writeback_sequences(
                    hcfg,
                    SkewedCache::with_banks(cfg, |b, g| SkewXorBank::new(g, b)),
                    |_| NO_HINT,
                    label,
                ),
                SkewHashKind::PrimeDisplacement => diff_writeback_sequences(
                    hcfg,
                    SkewedCache::with_banks(cfg, |b, g| SkewDispBank::new(g, bank_disp_factor(b))),
                    |_| NO_HINT,
                    label,
                ),
            },
            L2Organization::FullyAssociative {
                size_bytes,
                line_bytes,
            } => diff_writeback_sequences(
                hcfg,
                FullyAssociative::new(size_bytes, line_bytes),
                |_| NO_HINT,
                label,
            ),
        }
    }
}

#[test]
fn obs_counters_match_batched_stats_on_every_scheme() {
    // The instrumented driver runs the reference hierarchy; its recorder
    // counters must equal the *batched* driver's stats — chaining the
    // obs==reference invariant (obs_layer test) with batched==reference
    // into obs==batched, per scheme.
    let w = primecache::workloads::by_name("mcf").unwrap();
    for &scheme in &Scheme::ALL {
        let batched = run_workload(w, scheme, 10_000);
        let observed = run_workload_observed(w, scheme, 10_000, ObsConfig::default());
        let ctx = format!("mcf/{}", scheme.label());
        assert_results_equal(&batched, &observed.result, &ctx);
        let h = &observed.recorder.hot;
        assert_eq!(h.l1_accesses, batched.l1.accesses, "{ctx}");
        assert_eq!(h.l1_misses, batched.l1.misses, "{ctx}");
        assert_eq!(h.l2_accesses, batched.l2.accesses, "{ctx}");
        assert_eq!(h.l2_misses, batched.l2.misses, "{ctx}");
        assert_eq!(h.dram_reads, batched.dram.reads, "{ctx}");
        assert_eq!(h.dram_writes, batched.dram.writes, "{ctx}");
    }
}

#[test]
fn config_fingerprints_unchanged_by_the_batched_drivers() {
    // The fingerprint hashes the machine and the hierarchy it *builds*,
    // not the driver that runs it: running batched must not perturb it,
    // and the RunReport emitted from an instrumented (reference-path)
    // run must carry the same hash a batched caller would record.
    let machine = MachineConfig::paper_default();
    let w = primecache::workloads::by_name("tree").unwrap();
    for &scheme in &Scheme::ALL {
        let before = machine.fingerprint(scheme);
        let _ = run_workload(w, scheme, 2_000);
        assert_eq!(before, machine.fingerprint(scheme), "{}", scheme.label());
    }
    let (report, _rec) = primecache::sim::observe::observed_report(
        w,
        Scheme::PrimeModulo,
        2_000,
        ObsConfig::default(),
    );
    assert_eq!(
        report.provenance.config_hash,
        machine.fingerprint(Scheme::PrimeModulo)
    );
}
