//! Golden tests: the paper's §3.3 worked examples, verbatim.
//!
//! These pin the exact numerical behaviours the paper uses to argue for
//! and against each hash function, so a regression in any index function
//! fails loudly with the paper's own example.

use primecache::core::index::{Geometry, PrimeDisplacement, PrimeModulo, SetIndexer, Xor};
use primecache::core::metrics::{set_histogram, strided_addresses};
use primecache::primes::frag::{fragmentation_row, table1};

#[test]
fn xor_stride_15_of_16_sets_goes_0_15_15_15() {
    // §3.3: "with s = 15 and n_set = 16 (as in a 4-way 4KB cache with 64
    // byte lines), it will access sets 0, 15, 15, 15, ...".
    let xor = Xor::new(Geometry::new(16));
    let sets: Vec<u64> = (0..4u64).map(|i| xor.index(i * 15)).collect();
    assert_eq!(sets, [0, 15, 15, 15]);
}

#[test]
fn xor_strides_3_and_5_also_fail_at_16_sets() {
    // §3.3: "Not only that, a stride of 3 or 5 will also fail to achieve
    // the ideal balance because they are factors of 15." The failure is a
    // *burst* phenomenon: over short windows the balance is bad, and the
    // concentration (the burstiness measure) never becomes ideal — which
    // is exactly why the paper pairs the two metrics.
    use primecache::core::metrics::{balance, concentration};
    let xor = Xor::new(Geometry::new(16));
    for s in [3u64, 5, 15] {
        let short = strided_addresses(s, 64);
        let b = balance(&xor, short.iter().copied());
        assert!(
            b > 1.2,
            "stride {s}: short-window balance {b} should be bad"
        );
        let long = strided_addresses(s, 4096);
        let c = concentration(&xor, long.iter().copied());
        assert!(
            c > 5.0,
            "stride {s}: concentration {c} should stay non-ideal"
        );
    }
    // A traditional cache is perfectly fine on these odd strides — the
    // §3.3 argument that XOR can be *worse* than no hashing at all.
    use primecache::core::index::Traditional;
    let trad = Traditional::new(Geometry::new(16));
    for s in [3u64, 5, 15] {
        let long = strided_addresses(s, 4096);
        assert_eq!(concentration(&trad, long.iter().copied()), 0.0);
    }
}

#[test]
fn pdisp_reaccess_distance_is_n_set_minus_p() {
    // §3.3: for pDisp, "the distance between two accesses to the same set
    // is almost always constant ... x = n_set − p".
    let n_set = 2048u64;
    let p = 9u64;
    let pd = PrimeDisplacement::new(Geometry::new(n_set), p);
    let addrs = strided_addresses(1, 4 * n_set as usize);
    let sets: Vec<u64> = addrs.iter().map(|&a| pd.index(a)).collect();
    // Measure gaps between consecutive accesses to each set.
    let mut last = vec![None::<usize>; n_set as usize];
    let mut gap_counts = std::collections::HashMap::new();
    for (i, &s) in sets.iter().enumerate() {
        if let Some(prev) = last[s as usize] {
            *gap_counts.entry(i - prev).or_insert(0u64) += 1;
        }
        last[s as usize] = Some(i);
    }
    let (&dominant, &count) = gap_counts.iter().max_by_key(|(_, &c)| c).unwrap();
    let total: u64 = gap_counts.values().sum();
    assert_eq!(dominant as u64, n_set - p, "dominant re-access distance");
    assert!(
        count * 10 > total * 9,
        "x = n_set - p must dominate: {count}/{total}"
    );
}

#[test]
fn pmod_fails_only_on_multiples_of_its_prime() {
    // Property 1 for pMod: gcd(s, 2039) = 1 except s = k*2039.
    let pmod = PrimeModulo::new(Geometry::new(2048));
    for s in [2039u64, 2 * 2039, 3 * 2039] {
        let hist = set_histogram(&pmod, strided_addresses(s, 4096));
        assert_eq!(hist.iter().filter(|&&c| c > 0).count(), 1, "stride {s}");
    }
    for s in [2038u64, 2040, 4096, 1024] {
        let hist = set_histogram(&pmod, strided_addresses(s, 2039));
        assert_eq!(
            hist.iter().filter(|&&c| c > 0).count(),
            2039,
            "stride {s} must cover every set once"
        );
    }
}

#[test]
fn table1_rows_are_golden() {
    let expected: [(u64, u64); 7] = [
        (256, 251),
        (512, 509),
        (1024, 1021),
        (2048, 2039),
        (4096, 4093),
        (8192, 8191),
        (16384, 16381),
    ];
    for (row, (phys, prime)) in table1().iter().zip(expected) {
        assert_eq!((row.n_set_phys, row.n_set), (phys, prime));
    }
    // BSP's fragmentation, quoted as "a non-trivial 6.3%": 17 banks on a
    // 16-bank power-of-two budget is the classic example; our helper
    // reproduces the general mechanism on any size.
    let tiny = fragmentation_row(16).unwrap();
    assert_eq!(tiny.n_set, 13);
}

#[test]
fn wired_unit_example_components() {
    // §3.1.1: 2048 physical sets, 2039 = 2^11 - 9, index =
    // x + 9*t1 + 81*t2 (mod 2039). Verify the identity itself on random
    // 26-bit block addresses.
    for a in (0..(1u64 << 26)).step_by(104_729) {
        let x = a & 0x7FF;
        let t1 = (a >> 11) & 0x7FF;
        let t2 = (a >> 22) & 0xF;
        assert_eq!((x + 9 * t1 + 81 * t2) % 2039, a % 2039, "a = {a}");
    }
}
