//! Property tests of the index-expression DSL at the workspace seam:
//! printer/parser round-trip, folding soundness, span-carrying rejection
//! of malformed sources, and compile-time rejection of expressions the
//! closure compiler cannot bound.

use primecache::core::expr::{fold, parse, register_anonymous, BinOp, Expr};
use primecache_check::prop::{forall, Rng};

/// A random expression tree, depth-bounded, drawn from a seed so the
/// prop harness can shrink the seed.
fn arb_expr(rng: &mut Rng, depth: u32) -> Expr {
    if depth == 0 || rng.range_u32(0, 4) == 0 {
        if rng.bool() {
            Expr::Addr
        } else {
            // Bias toward small constants (masks, shifts) but keep the
            // full u64 range reachable.
            let shift = rng.range_u32(0, 64);
            Expr::Const(rng.next_u64() >> shift)
        }
    } else {
        let op = match rng.range_u32(0, 8) {
            0 => BinOp::Or,
            1 => BinOp::Xor,
            2 => BinOp::And,
            3 => BinOp::Shl,
            4 => BinOp::Shr,
            5 => BinOp::Add,
            6 => BinOp::Mul,
            _ => BinOp::Mod,
        };
        let l = arb_expr(rng, depth - 1);
        let r = arb_expr(rng, depth - 1);
        Expr::bin(op, l, r)
    }
}

fn expr_from_seed(seed: u64) -> Expr {
    arb_expr(&mut Rng::new(seed), 4)
}

#[test]
fn printer_output_reparses_to_the_same_ast() {
    forall(
        "parse(print(ast)) == ast",
        500,
        |rng| rng.next_u64(),
        |&seed| {
            let e = expr_from_seed(seed);
            let printed = e.to_string();
            let reparsed = parse(&printed)
                .unwrap_or_else(|err| panic!("printed `{printed}` failed to reparse: {err}"));
            assert_eq!(reparsed, e, "round-trip changed the tree of `{printed}`");
        },
    );
}

#[test]
fn folding_preserves_semantics_and_round_trips() {
    forall(
        "fold is sound and printable",
        500,
        |rng| (rng.next_u64(), rng.next_u64()),
        |&(seed, addr)| {
            let e = expr_from_seed(seed);
            let folded = fold(&e);
            for a in [
                0u64,
                1,
                addr,
                addr.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                u64::MAX,
            ] {
                assert_eq!(
                    folded.eval(a),
                    e.eval(a),
                    "fold changed `{e}` at a = {a:#x} (folded: `{folded}`)"
                );
            }
            // Folding must stay inside the printable/parsable language.
            let printed = folded.to_string();
            assert_eq!(parse(&printed).expect("folded form reparses"), folded);
            // And be idempotent: a canonical form has no more work to do.
            assert_eq!(fold(&folded), folded, "fold not idempotent on `{e}`");
        },
    );
}

#[test]
fn malformed_sources_error_with_in_bounds_spans() {
    // Every rejection must be a span-carrying Err, never a panic, and the
    // span must point inside (or exactly at the end of) the source.
    let bad = [
        "",
        "   ",
        "a +",
        "+ a",
        "(a",
        "a)",
        "a & & 3",
        "a %% 2",
        "q",
        "addr2",
        "0x",
        "0xzz",
        "a[",
        "a[3]",
        "a[3:",
        "a[:2]",
        "a[2:5]", // hi < lo
        "a 5",
        "5 5",
        "a # 3",
        "((a % 2039) ^ (a >> 13) & 2047", // unbalanced
        "18446744073709551616",           // u64::MAX + 1
    ];
    for src in bad {
        match parse(src) {
            Ok(e) => panic!("`{src}` parsed as `{e}` but must be rejected"),
            Err(err) => {
                assert!(
                    err.span.start <= err.span.end && err.span.end <= src.len(),
                    "`{src}`: span {:?} out of bounds",
                    err.span
                );
                assert!(!err.message.is_empty(), "`{src}`: empty error message");
            }
        }
    }
}

#[test]
fn parse_never_panics_on_arbitrary_ascii() {
    forall(
        "parse totality",
        2_000,
        |rng| rng.next_u64(),
        |&seed| {
            let mut rng = Rng::new(seed);
            let len = rng.range_usize(0, 24);
            let mut src = String::new();
            for _ in 0..len {
                // Printable ASCII, weighted toward the DSL alphabet.
                let c = match rng.range_u32(0, 3) {
                    0 => b"a0123456789"[rng.range_usize(0, 11)],
                    1 => b"()[]<>^&|%*+: "[rng.range_usize(0, 14)],
                    _ => u8::try_from(rng.range_u32(0x20, 0x7f)).expect("printable ascii"),
                };
                src.push(char::from(c));
            }
            // Ok or Err are both fine; a panic fails the property. Spans
            // of rejections must stay inside the source.
            if let Err(e) = parse(&src) {
                assert!(e.span.end <= src.len(), "span escapes `{src}`");
            }
        },
    );
}

#[test]
fn unbounded_or_unsupported_expressions_fail_registration_not_simulation() {
    // Compile-level rejections: parseable sources the closure compiler
    // must refuse (division by zero, non-constant modulus, shift >= 64,
    // set space wider than any cache could hold).
    for src in ["a % 0", "a % a", "a % (a + 1)", "a << a", "a"] {
        assert!(
            register_anonymous(src).is_err(),
            "`{src}` must be rejected at registration"
        );
    }
    // The same sources masked into a bounded window become valid.
    let id = register_anonymous("a & 1023").expect("bounded source compiles");
    assert_eq!(id.n_set(), 1024);
}
