//! External-ingestion differential battery.
//!
//! Two families of invariants:
//!
//! * **Importer equivalence** — exporting a recorded trace to the
//!   TRACE_FORMAT.md text grammar and importing it back must reproduce
//!   the recorded `PCTE` frame *byte-for-byte* (same fingerprint), and
//!   simulating the import must match the direct recorded run on every
//!   aggregate, including the exact observability counters. Malformed
//!   inputs — truncated frames, bad tag bytes, overlong lines — must
//!   all come back as errors, never panics.
//! * **Tenant equivalence** — a single-tenant "mix" is the plain trace
//!   (tenant 0's namespace tag is the identity), so the interleaved
//!   driver must be bit-identical to `run_recorded`; with several
//!   tenants, the per-tenant attributed statistics must sum to the
//!   aggregate run field-for-field.

use primecache::ingest::{import_bytes, text::write_text, ImportError, SourceFormat};
use primecache::obs::ObsConfig;
use primecache::sim::observe::observe_chunks;
use primecache::sim::{
    run_chunks, run_recorded, run_tenant_mix, tenant_solo_baseline, MachineConfig, Scheme,
};
use primecache::trace::EncodedTrace;
use primecache::workloads::{by_name, MixConfig, TenantMix, STREAM_CHUNK};

const APPS: [&str; 3] = ["tree", "mcf", "swim"];
const REFS: u64 = 2_500;

fn recorded(app: &str) -> EncodedTrace {
    by_name(app).expect("battery workload exists").record(REFS)
}

/// Text export of a recording re-imports to the identical frame, and
/// the import simulates identically to the recording, for every battery
/// workload and a scheme from each L2 family.
#[test]
fn text_import_matches_the_recorded_run() {
    let machine = MachineConfig::paper_default();
    for app in APPS {
        let trace = recorded(app);
        let mut text = Vec::new();
        write_text(
            trace.decode_all().expect("fresh recording decodes"),
            &mut text,
        )
        .expect("Vec<u8> write");
        let imported = import_bytes(&text).expect("canonical text imports");

        assert_eq!(imported.stats.format, SourceFormat::Text, "{app}");
        assert_eq!(
            imported.trace.to_bytes(),
            trace.to_bytes(),
            "{app}: frame bytes"
        );
        assert_eq!(
            imported.trace.fingerprint(),
            trace.fingerprint(),
            "{app}: fingerprint"
        );
        assert_eq!(imported.stats.refs(), trace.refs(), "{app}: refs");

        for scheme in [Scheme::Base, Scheme::PrimeModulo, Scheme::Skewed] {
            let direct = run_recorded(&trace, scheme, &machine);
            let via_import = run_chunks(imported.chunks(), scheme, &machine);
            assert_eq!(via_import.breakdown, direct.breakdown, "{app}/{scheme}");
            assert_eq!(via_import.l1, direct.l1, "{app}/{scheme}: L1");
            assert_eq!(via_import.l2, direct.l2, "{app}/{scheme}: L2");
            assert_eq!(via_import.dram, direct.dram, "{app}/{scheme}: DRAM");
        }
    }
}

/// The PCTE reader is the identity on its own output, and a frame is
/// fully validated before any simulation sees it.
#[test]
fn pcte_import_is_the_identity() {
    for app in APPS {
        let trace = recorded(app);
        let imported = import_bytes(&trace.to_bytes()).expect("own frame imports");
        assert_eq!(imported.stats.format, SourceFormat::Pcte, "{app}");
        assert_eq!(imported.trace, trace, "{app}: decoded frame");
    }
}

/// Observability counters — not just aggregates — agree between the
/// direct replay and the imported trace.
#[test]
fn import_preserves_obs_counters() {
    let trace = recorded("tree");
    let mut text = Vec::new();
    write_text(trace.decode_all().expect("decodes"), &mut text).expect("Vec<u8> write");
    let imported = import_bytes(&text).expect("imports");

    let direct = observe_chunks(trace.replay(), Scheme::PrimeModulo, ObsConfig::default());
    let via = observe_chunks(imported.chunks(), Scheme::PrimeModulo, ObsConfig::default());
    assert_eq!(via.recorder.hot, direct.recorder.hot, "hot counters");
    assert_eq!(via.result.l2, direct.result.l2, "L2 stats");
}

/// Every malformed-input class returns an error; none may panic.
#[test]
fn malformed_inputs_error_cleanly() {
    let trace = recorded("swim");
    let frame = trace.to_bytes();

    // Truncations at every prefix length of a real frame (varints and
    // chunk headers get cut mid-field).
    for len in 0..frame.len().min(64) {
        let r = import_bytes(&frame[..len]);
        if len >= 4 && frame.len() > 64 {
            assert!(r.is_err(), "truncated frame (len {len}) must not validate");
        }
    }
    // A corrupted event tag inside the first chunk payload reports a
    // byte offset, not a panic.
    let mut bad_tag = frame.clone();
    bad_tag[48] = 0x07;
    match import_bytes(&bad_tag) {
        Err(ImportError::Frame(e)) => assert!(e.offset >= 48, "offset {} < payload", e.offset),
        other => panic!("bad tag byte must fail as a frame error, got {other:?}"),
    }
    // Trailing garbage after a valid frame.
    let mut long = frame.clone();
    long.extend_from_slice(b"tail");
    assert!(import_bytes(&long).is_err(), "trailing bytes must fail");

    // Text error classes: overlong line, bad address, bad count,
    // unknown tag, trailing field, non-UTF-8.
    let overlong = format!("L {}\n", "f".repeat(8192));
    for bad in [
        overlong.as_str(),
        "L zzz\n",
        "W -3\n",
        "Q 123\n",
        "S 40 d\n",
        "L\n",
    ] {
        let r = import_bytes(bad.as_bytes());
        assert!(
            matches!(r, Err(ImportError::Text(_))),
            "'{bad}' must fail as text"
        );
    }
    assert!(
        matches!(import_bytes(b"L \xff\xfe\n"), Err(ImportError::Text(_))),
        "non-UTF-8 must fail as text"
    );
}

/// A one-tenant mix is the plain trace: the interleaved driver must be
/// bit-identical to `run_recorded` on every aggregate.
#[test]
fn single_tenant_mix_is_bit_identical_to_the_plain_driver() {
    let machine = MachineConfig::paper_default();
    for app in APPS {
        let trace = recorded(app);
        let mix = TenantMix::with_defaults(vec![(app.to_owned(), trace.clone())]);
        for scheme in [Scheme::Base, Scheme::PrimeDisplacement] {
            let plain = run_recorded(&trace, scheme, &machine);
            let tenant = run_tenant_mix(&mix, scheme, &machine);
            assert_eq!(
                tenant.aggregate.breakdown, plain.breakdown,
                "{app}/{scheme}"
            );
            assert_eq!(tenant.aggregate.l1, plain.l1, "{app}/{scheme}: L1");
            assert_eq!(tenant.aggregate.l2, plain.l2, "{app}/{scheme}: L2");
            assert_eq!(tenant.aggregate.dram, plain.dram, "{app}/{scheme}: DRAM");
            assert_eq!(
                tenant.lanes[0].l2, plain.l2,
                "{app}/{scheme}: lane attribution"
            );
            let (solo_l1, solo_l2) = tenant_solo_baseline(&mix, 0, scheme, &machine);
            assert_eq!(solo_l1, plain.l1, "{app}/{scheme}: solo L1");
            assert_eq!(solo_l2, plain.l2, "{app}/{scheme}: solo L2");
        }
    }
}

/// With several tenants the per-lane attribution partitions the
/// aggregate exactly, and the schedule is deterministic.
#[test]
fn tenant_lanes_partition_the_aggregate() {
    let machine = MachineConfig::paper_default();
    let tenants: Vec<(String, EncodedTrace)> = APPS
        .iter()
        .map(|app| ((*app).to_owned(), recorded(app)))
        .collect();
    let mix = TenantMix::new(
        tenants,
        MixConfig {
            quantum_instructions: 900,
            ..MixConfig::default()
        },
    );
    let run = run_tenant_mix(&mix, Scheme::PrimeModulo, &machine);
    let again = run_tenant_mix(&mix, Scheme::PrimeModulo, &machine);
    assert_eq!(run.mix, again.mix, "deterministic schedule");

    let mut l1_accesses = 0u64;
    let mut l2_misses = 0u64;
    let mut l2_writebacks = 0u64;
    for lane in &run.lanes {
        l1_accesses += lane.l1.accesses;
        l2_misses += lane.l2.misses;
        l2_writebacks += lane.l2.writebacks;
        assert_eq!(lane.l1.accesses, lane.refs, "lane refs are its L1 accesses");
    }
    assert_eq!(
        l1_accesses, run.aggregate.l1.accesses,
        "L1 access partition"
    );
    assert_eq!(l2_misses, run.aggregate.l2.misses, "L2 miss partition");
    assert_eq!(
        l2_writebacks, run.aggregate.l2.writebacks,
        "writeback partition"
    );
    assert!(run.mix.switches > 0, "three tenants must interleave");
    assert_eq!(
        run.mix.ns_overflows, 0,
        "workload addresses fit the namespace"
    );
}

/// Imported traces and recorded traces are interchangeable as tenants:
/// importing a tenant's text export changes nothing about the mix.
#[test]
fn imported_tenants_equal_recorded_tenants() {
    let machine = MachineConfig::paper_default();
    let a = recorded("tree");
    let b = recorded("swim");
    let mut text = Vec::new();
    write_text(b.decode_all().expect("decodes"), &mut text).expect("Vec<u8> write");
    let b_imported = import_bytes(&text).expect("imports").trace;

    let native =
        TenantMix::with_defaults(vec![("tree".to_owned(), a.clone()), ("swim".to_owned(), b)]);
    let via_import = TenantMix::with_defaults(vec![
        ("tree".to_owned(), a),
        ("swim".to_owned(), b_imported),
    ]);
    let r1 = run_tenant_mix(&native, Scheme::Base, &machine);
    let r2 = run_tenant_mix(&via_import, Scheme::Base, &machine);
    assert_eq!(r1.aggregate.l2, r2.aggregate.l2);
    assert_eq!(r1.mix, r2.mix);
    for (x, y) in r1.lanes.iter().zip(&r2.lanes) {
        assert_eq!(x.l2, y.l2, "lane {}", x.name);
    }
}

/// The re-encode cadence is pinned: text import cuts chunks exactly at
/// the recording cadence, which is what makes round trips byte-exact.
#[test]
fn import_uses_the_recording_chunk_cadence() {
    let imported = import_bytes(b"L 0x40\nS 0x80\n").expect("imports");
    assert_eq!(imported.trace.chunk_events(), STREAM_CHUNK);
}
