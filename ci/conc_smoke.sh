#!/usr/bin/env sh
# Bounded concurrency model check for the PR gate: runs the full
# `pcache conc-check` suite (exhaustive interleaving exploration of the
# streaming chunk-channel and sweep slot/cursor protocols at preemption
# bound 2, plus the seeded-bug detections with their replay seeds) and
# the conc crate's own test battery. The whole script stays under a
# minute — the state spaces at bound 2 are a few hundred schedules.
# Run locally with `sh ci/conc_smoke.sh`; CONC_BOUND overrides the
# preemption bound.
set -eu

BOUND="${CONC_BOUND:-2}"

[ -f Cargo.toml ] || { echo "run from the repository root" >&2; exit 2; }

echo "==> model-checker + facade unit tests"
cargo test -q -p primecache-conc

echo "==> pcache conc-check --bound $BOUND (exhaustive at the bound)"
cargo run --release -q -p primecache-cli --bin pcache -- conc-check --bound "$BOUND"

echo "conc smoke passed (preemption bound $BOUND)"
