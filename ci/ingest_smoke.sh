#!/usr/bin/env sh
# External-ingestion smoke for the PR gate: generate a workload trace,
# export it as both a PCTE frame and TRACE_FORMAT.md text, import the
# text back, and require the conversion to be byte-identical to the
# native frame (`cmp`); then simulate both imports and require
# identical results, run a 2-tenant interference sweep end-to-end, and
# check that every malformed-input class fails with a clean error (exit
# code 1, no panic). Run locally with `sh ci/ingest_smoke.sh`;
# INGEST_REFS overrides the trace length.
set -eu

REFS="${INGEST_REFS:-2000}"

[ -f Cargo.toml ] || { echo "run from the repository root" >&2; exit 2; }

PCACHE="cargo run --release -q -p primecache-cli --bin pcache --"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

echo "==> export swim ($REFS refs) as PCTE frame and text"
$PCACHE trace swim --refs "$REFS" --format pcte --out "$TMP/native.pcte"
$PCACHE trace swim --refs "$REFS" --format text --out "$TMP/native.txt"

echo "==> import the text export and compare frames byte-for-byte"
$PCACHE import "$TMP/native.txt" --out "$TMP/reimported.pcte" | tee "$TMP/import.txt"
cmp "$TMP/native.pcte" "$TMP/reimported.pcte" \
  || { echo "text round trip is not byte-identical" >&2; exit 1; }
grep -q "fingerprint" "$TMP/import.txt" \
  || { echo "import output lost the provenance fingerprint" >&2; exit 1; }

echo "==> simulate both imports; results must match line-for-line"
$PCACHE import "$TMP/native.txt" --run --scheme pMod | grep -A2 "simulated under" \
  > "$TMP/run-text.txt"
$PCACHE import "$TMP/native.pcte" --run --scheme pMod | grep -A2 "simulated under" \
  > "$TMP/run-pcte.txt"
diff "$TMP/run-text.txt" "$TMP/run-pcte.txt" \
  || { echo "text and PCTE imports simulate differently" >&2; exit 1; }

echo "==> inspect recognizes the PCTE frame"
$PCACHE inspect "$TMP/native.pcte" > "$TMP/inspect.txt"
grep -q "PCTE frame" "$TMP/inspect.txt" \
  || { echo "inspect failed to recognize the frame" >&2; exit 1; }

echo "==> 2-tenant interference sweep (workload + imported file as tenants)"
$PCACHE sweep --tenants tree,"$TMP/native.pcte" --refs "$REFS" --quantum 2000

echo "==> malformed inputs must fail cleanly (exit 1, no panic)"
head -c 20 "$TMP/native.pcte" > "$TMP/truncated.pcte"
printf 'L 0x40\nQ 9\n' > "$TMP/badtag.txt"
printf 'L zzz\n' > "$TMP/badaddr.txt"
for bad in truncated.pcte badtag.txt badaddr.txt; do
  if $PCACHE import "$TMP/$bad" 2> "$TMP/err.txt"; then
    echo "malformed input $bad was accepted" >&2; exit 1
  fi
  [ -s "$TMP/err.txt" ] || { echo "$bad failed without a message" >&2; exit 1; }
done

echo "ingest smoke passed ($REFS refs)"
