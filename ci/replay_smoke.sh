#!/usr/bin/env sh
# Replay-equivalence smoke for the PR gate: runs the recorded-replay
# differential battery (`tests/replay_equivalence.rs` — every workload's
# encoded replay must be bit-identical to its live stream, and replayed
# simulations must match live runs across all schemes) at a reduced
# per-workload reference count, then times the pure trace pipeline via
# `pcache bench --gen-only` as a sanity check that recording and decode
# both complete over the whole suite. Run locally with
# `sh ci/replay_smoke.sh`; REPLAY_REFS overrides the trace length.
set -eu

REFS="${REPLAY_REFS:-1000}"

[ -f Cargo.toml ] || { echo "run from the repository root" >&2; exit 2; }

echo "==> replay-equivalence battery (REPLAY_REFS=$REFS)"
REPLAY_REFS="$REFS" cargo test --release -q --test replay_equivalence

echo "==> pcache bench --gen-only (trace pipeline stages, $REFS refs/workload)"
cargo run --release -q -p primecache-cli --bin pcache -- bench --gen-only --refs "$REFS"

echo "replay smoke passed ($REFS refs/workload)"
