#!/usr/bin/env sh
# Smoke-runs the black-box attack engine: the full eight-scheme
# differential oracle (recovered model vs static model, exit 1 on any
# mismatch), the JSON report shape, one DSL scheme per recoverable
# family, and the honest Opaque declaration. Runs in the debug-test job
# on purpose — the probe oracles and the recovery verifier carry debug
# assertions.
set -eu
cd "$(dirname "$0")/.."

PCACHE="cargo run -q -p primecache-cli --bin pcache --"

# All eight built-ins: recovery, differential verdict, eviction tiers.
$PCACHE attack >/dev/null

# Versioned JSON report.
$PCACHE attack --scheme pMod --json | grep -q '"schema":"primecache.attack-report"'
$PCACHE attack --scheme pMod --json | grep -q '"version":1'

# One DSL scheme per recoverable family, plus the Opaque fallback (which
# must agree with the static Opaque model, not fail).
for src in 'a % 1021' '(a ^ (a >> 11)) & 2047' \
    '((9 * (a >> 11)) + a) & 2047' '((a % 2039) ^ (a >> 13)) & 2047'; do
    $PCACHE attack --expr "$src" >/dev/null
done

# A degenerate scheme is refused by the lint gate, not probed.
if $PCACHE attack --expr 'a % 2046' >/dev/null 2>&1; then
    echo "ERROR: composite modulus passed the attack lint gate" >&2
    exit 1
fi

echo "attack smoke passed"
