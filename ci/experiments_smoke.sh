#!/usr/bin/env sh
# Greps the runnable commands out of EXPERIMENTS.md and smoke-runs each
# one at tiny trace lengths, so the cookbook can never drift from the
# binaries it documents. CI runs this in the docs job; run it locally
# with `sh ci/experiments_smoke.sh` (SMOKE_REFS overrides the scale).
set -eu

DOC=EXPERIMENTS.md
REFS="${SMOKE_REFS:-2000}"

[ -f "$DOC" ] || { echo "run from the repository root" >&2; exit 2; }

# Every bench binary the cookbook references by `--bin <name>`.
bins=$(grep -oE -- '--bin [a-z_0-9]+' "$DOC" | awk '{print $2}' | sort -u | grep -v '^pcache$')
[ -n "$bins" ] || { echo "no --bin commands found in $DOC" >&2; exit 2; }
for bin in $bins; do
    echo "==> bench --bin $bin (refs $REFS)"
    cargo run --release -q -p primecache-bench --bin "$bin" -- --refs "$REFS" >/dev/null
done

# Every pcache command quoted verbatim in the cookbook, scaled down.
grep -E '^cargo run --release -p primecache-cli' "$DOC" \
    | sed -E "s/--refs [0-9]+/--refs $REFS/" \
    | while IFS= read -r cmd; do
        echo "==> $cmd"
        sh -c "$cmd" >/dev/null
    done

echo "EXPERIMENTS.md commands all ran (refs $REFS)"
