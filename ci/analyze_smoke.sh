#!/usr/bin/env sh
# Smoke-runs the static analyzer over a small corpus of DSL schemes:
# the self-check battery (kernel brute-force, Theorem 1, sampled
# histograms, expression differential), the built-in report, one scheme
# per exact model family, one deliberately opaque scheme (warns but
# certifies sampled), and one composite modulus that the certificate
# gate must reject. Runs in the debug-test job, so debug build on
# purpose — the gate assertions only fire there.
set -eu
cd "$(dirname "$0")/.."

PCACHE="cargo run -q -p primecache-cli --bin pcache --"

$PCACHE analyze --self-check
$PCACHE analyze >/dev/null

# One expression per exact lowering family: Residue, Linear, Affine.
for src in 'a % 2039' '(a ^ (a >> 11)) & 2047' \
    '((9 * (a >> 11)) + (a & 2047)) & 2047'; do
    $PCACHE analyze --expr "$src" >/dev/null
done

# Opaque fallback: sampled certificate, warning-level lint, exit 0.
$PCACHE analyze --expr '((a % 2039) ^ (a >> 13)) & 2047' >/dev/null

# Composite modulus must be rejected with a nonzero exit.
if $PCACHE analyze --expr 'a % 2046' >/dev/null 2>&1; then
    echo "ERROR: composite modulus passed the certificate gate" >&2
    exit 1
fi

echo "analyze smoke passed"
